"""Exit-code paths of the bench comparator and the latency columns.

Complements ``test_obs_export.py`` (which covers the basic delta
machinery): here the CLI exit codes (0 clean / 1 regression / 2
flavour mismatch / 3 host budget), the host-threshold handling, the
``latency`` section with its higher-is-better throughput column, and
the latency-percentile math including the empty-run edge case.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    PERCENTILES,
    flatten_latency,
    latency_summary,
    percentile,
)
from repro.obs.bench import main as bench_main
from repro.obs.compare import compare_bench
from repro.obs.compare import main as compare_main


def _doc(*, makespan=100.0, host_s=None, latency=None, hier=None,
         quick=None, name="service-prio/np16"):
    run = {"makespan": makespan}
    if host_s is not None:
        run["host_s"] = host_s
    if latency is not None:
        run["latency"] = latency
    if hier is not None:
        run["hier"] = hier
    doc = {"runs": {name: run}}
    if quick is not None:
        doc["meta"] = {"quick": quick}
    return doc


def _write(tmp_path, name, doc):
    p = tmp_path / name
    p.write_text(json.dumps(doc))
    return str(p)


# ----------------------------------------------------------------------
# latency section in the comparison
# ----------------------------------------------------------------------
class TestLatencySection:
    def test_p95_regression_flagged(self):
        old = _doc(latency={"p95_s": 10.0})
        new = _doc(latency={"p95_s": 14.0})
        deltas = compare_bench(old, new)
        assert [d.key for d in deltas] == ["latency.p95_s"]
        assert deltas[0].regression

    def test_throughput_drop_is_regression(self):
        old = _doc(latency={"throughput_qps": 2.0})
        new = _doc(latency={"throughput_qps": 1.0})
        (d,) = compare_bench(old, new)
        assert d.key == "latency.throughput_qps"
        assert d.regression and "WORSE" in d.render()

    def test_throughput_gain_is_improvement(self):
        old = _doc(latency={"throughput_qps": 1.0})
        new = _doc(latency={"throughput_qps": 2.0})
        (d,) = compare_bench(old, new)
        assert not d.regression and "better" in d.render()

    def test_lane_columns_compared(self):
        old = _doc(latency={"lanes.interactive.p95_s": 5.0})
        new = _doc(latency={"lanes.interactive.p95_s": 9.0})
        (d,) = compare_bench(old, new)
        assert d.key == "latency.lanes.interactive.p95_s"
        assert d.regression


# ----------------------------------------------------------------------
# hier section in the comparison (two-level driver runs)
# ----------------------------------------------------------------------
class TestHierSection:
    def test_wait_share_growth_is_regression(self):
        """Every hier key is plain lower-is-better: a group waiting
        longer on its coordinator is the hierarchy losing its point."""
        old = _doc(hier={"group_coord_wait_share_max": 0.01}, name="hier/np256")
        new = _doc(hier={"group_coord_wait_share_max": 0.20}, name="hier/np256")
        (d,) = compare_bench(old, new)
        assert d.key == "hier.group_coord_wait_share_max"
        assert d.regression and "WORSE" in d.render()

    def test_wait_drop_is_improvement(self):
        old = _doc(hier={"group.g3.coord_wait_s": 40.0}, name="hier/np256")
        new = _doc(hier={"group.g3.coord_wait_s": 4.0}, name="hier/np256")
        (d,) = compare_bench(old, new)
        assert not d.regression and "better" in d.render()

    def test_missing_section_is_silent(self):
        """A baseline without hier runs (pre-hierarchy bench files)
        produces no hier deltas — only keys both sides share compare."""
        old = _doc(name="hier/np256")
        new = _doc(hier={"coordinator.wait_share": 0.9}, name="hier/np256")
        assert compare_bench(old, new) == []

    def test_hier_regression_through_cli(self, tmp_path):
        old = _write(tmp_path, "old.json",
                     _doc(hier={"group_coord_wait_share_max": 0.01},
                          name="hier/np1024"))
        new = _write(tmp_path, "new.json",
                     _doc(hier={"group_coord_wait_share_max": 0.5},
                          name="hier/np1024"))
        assert compare_main([old, new]) == 1
        assert compare_main([old, old]) == 0


# ----------------------------------------------------------------------
# compare CLI exit codes
# ----------------------------------------------------------------------
class TestCompareExitCodes:
    def test_host_threshold(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json", _doc(host_s=10.0))
        new = _write(tmp_path, "new.json", _doc(host_s=13.0))
        # +30% host time: inside the default 50% band ...
        assert compare_main([old, new]) == 0
        # ... a regression with a tight band ...
        assert compare_main([old, new, "--host-threshold", "0.1"]) == 1
        assert "host_s" in capsys.readouterr().out
        # ... and invisible when host time is ignored.
        assert compare_main([old, new, "--host-threshold", "inf"]) == 0

    def test_quick_full_mismatch_exits_2(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json", _doc(quick=True))
        new = _write(tmp_path, "new.json", _doc(quick=False))
        assert compare_main([old, new]) == 2
        assert "cannot compare" in capsys.readouterr().out

    def test_latency_regression_through_cli(self, tmp_path):
        old = _write(tmp_path, "old.json",
                     _doc(latency={"throughput_qps": 2.0}))
        new = _write(tmp_path, "new.json",
                     _doc(latency={"throughput_qps": 0.5}))
        assert compare_main([old, new]) == 1


# ----------------------------------------------------------------------
# bench --host-budget exit path
# ----------------------------------------------------------------------
class TestBenchHostBudget:
    @pytest.fixture()
    def fake_bench(self, monkeypatch, tmp_path):
        doc = {
            "meta": {"quick": True},
            "runs": {"pioblast/np4": {"makespan": 1.0, "host_s": 6.0}},
            "kernel": {"blastn/100": {"scalar_host_s": 3.0,
                                      "batch_host_s": 1.0}},
        }
        monkeypatch.setattr(
            "repro.obs.bench.write_bench",
            lambda path, **kw: doc,
        )
        return str(tmp_path / "bench.json")

    def test_within_budget_exits_0(self, fake_bench):
        assert bench_main(["--out", fake_bench,
                           "--host-budget", "60"]) == 0

    def test_over_budget_exits_3(self, fake_bench, capsys):
        # Total host time is 6 + 3 + 1 = 10s.
        assert bench_main(["--out", fake_bench,
                           "--host-budget", "5"]) == 3
        assert "HOST BUDGET EXCEEDED" in capsys.readouterr().out


# ----------------------------------------------------------------------
# latency percentile math
# ----------------------------------------------------------------------
class TestLatencyMath:
    def test_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0
        assert all(percentile([7.0], p) == 7.0 for p in PERCENTILES)

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_summary_shape(self):
        summary = latency_summary(
            {"interactive": [0.1, 0.2], "scan": [1.0, 2.0, 3.0]}, 10.0
        )
        assert summary["queries"] == 5
        assert summary["throughput_qps"] == pytest.approx(0.5)
        assert summary["all"]["p50_s"] == pytest.approx(1.0)
        assert summary["lanes"]["scan"]["max_s"] == 3.0
        flat = flatten_latency(summary)
        assert flat["lanes.interactive.count"] == 2
        assert flat["p99_s"] == 3.0

    def test_empty_run(self):
        """A service run that admitted nothing still exports a
        well-formed (all-zero) latency section."""
        summary = latency_summary({}, 0.0)
        assert summary["queries"] == 0
        assert summary["throughput_qps"] == 0.0
        assert summary["all"]["p95_s"] == 0.0
        assert summary["lanes"] == {}
        flat = flatten_latency(summary)
        assert flat["queries"] == 0 and flat["p50_s"] == 0.0
        assert percentile([], 95) == 0.0
