"""Elastic hierarchical service: live traffic through self-healing
replication groups.

Tier 1 pins config/topology algebra, fault-free oracle identity in
both placements, runtime join/drain, whole-group-loss recovery,
SLO-preserving degradation when a fragment slice is permanently lost,
and admission shedding.  The ``chaos`` tier sweeps role kills at
np=64/K=4 under a Poisson stream and carries the hypothesis property
that join/leave schedules never drop or duplicate a query.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel import CostModel
from repro.hier import (
    ElasticConfig,
    HierConfig,
    build_topology,
    run_hier_service,
)
from repro.parallel import ParallelConfig, stage_inputs
from repro.service import ServiceConfig, poisson_arrivals
from repro.simmpi import FaultPlan, FileStore


def _serve(staged, queries, nprocs=13, ngroups=3, mode="replicate",
           rate=0.5, faults=None, elastic=None, service=None):
    store, cfg = staged
    jobs = poisson_arrivals(queries, rate=rate, seed=0)
    plan = FaultPlan.parse(faults) if faults else None
    sres = run_hier_service(
        nprocs, store, cfg, jobs,
        hier=HierConfig(ngroups=ngroups, mode=mode),
        service=service, elastic=elastic, faults=plan,
    )
    return sres, store, cfg


def _answered_exactly_once(sres, queries):
    """Every admitted query answered once; shed queries accounted."""
    qids = [row["qid"] for row in sres.per_query]
    assert len(qids) == len(set(qids))
    assert sorted(qids) == list(range(len(queries)))
    answered = sum(1 for row in sres.per_query if "completed" in row)
    shed = sum(1 for row in sres.per_query if row.get("shed"))
    assert answered + shed == len(queries)
    assert shed == sres.shed_queries


# ----------------------------------------------------------------------
# config + topology algebra (pure, no simulator)
# ----------------------------------------------------------------------
class TestElasticConfig:
    def test_bad_values_rejected(self):
        with pytest.raises(ValueError, match="size >= 2"):
            ElasticConfig(joins=((1, 5.0),))
        with pytest.raises(ValueError, match="join time"):
            ElasticConfig(joins=((4, -1.0),))
        with pytest.raises(ValueError, match="drain gid"):
            ElasticConfig(drains=((-1, 5.0),))
        with pytest.raises(ValueError, match="drain time"):
            ElasticConfig(drains=((0, -2.0),))
        with pytest.raises(ValueError, match="recovery_attempts"):
            ElasticConfig(recovery_attempts=-1)
        with pytest.raises(ValueError, match="recovery_backoff"):
            ElasticConfig(recovery_backoff=0.0)
        with pytest.raises(ValueError, match="redispatch_timeout"):
            ElasticConfig(redispatch_timeout=0.0)
        with pytest.raises(ValueError, match="redispatch_timeout"):
            ElasticConfig(redispatch_timeout=-5.0)

    def test_defaults_are_valid(self):
        ecfg = ElasticConfig()
        assert ecfg.joins == () and ecfg.drains == ()
        assert ecfg.recovery_attempts >= 1
        assert ecfg.redispatch_timeout is None


class TestTopologyJoins:
    def test_join_groups_reserved_at_top_of_rank_space(self):
        topo = build_topology(17, 3, "replicate", joins=(4,))
        assert topo.latent == (3,)
        assert topo.groups[3].members == (13, 14, 15, 16)
        # Initial groups still tile ranks 1..12 contiguously.
        initial = [r for g in topo.initial_groups for r in g.members]
        assert initial == list(range(1, 13))
        assert [g.gid for g in topo.initial_groups] == [0, 1, 2]

    def test_latent_shard_group_owns_no_fragments_at_launch(self):
        topo = build_topology(17, 3, "shard", joins=(4,))
        assert topo.frag_ids(3) == ()
        # The global fragment space is defined by the initial groups.
        ids = [f for g in topo.initial_groups for f in topo.frag_ids(g.gid)]
        assert ids == list(range(topo.total_fragments))

    def test_join_sizes_validated(self):
        with pytest.raises(ValueError, match="size >= 2"):
            build_topology(17, 3, "replicate", joins=(1,))
        # Reserved ranks count against the floor.
        with pytest.raises(ValueError, match="reserved for joins"):
            build_topology(9, 3, "replicate", joins=(4,))


# ----------------------------------------------------------------------
# driver validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_empty_and_duplicate_jobs_rejected(self, staged, small_queries):
        store, cfg = staged
        with pytest.raises(ValueError, match="at least one"):
            run_hier_service(13, store, cfg, [])
        jobs = poisson_arrivals(small_queries, rate=0.5, seed=0)
        with pytest.raises(ValueError, match="duplicate qid"):
            run_hier_service(13, store, cfg, jobs + [jobs[0]])

    def test_query_batch_rejected(self, staged, small_queries):
        store, cfg = staged
        jobs = poisson_arrivals(small_queries, rate=0.5, seed=0)
        with pytest.raises(ValueError, match="query_batch"):
            run_hier_service(13, store, replace(cfg, query_batch=4), jobs)

    def test_drain_gid_outside_topology_rejected(
        self, staged, small_queries
    ):
        store, cfg = staged
        jobs = poisson_arrivals(small_queries, rate=0.5, seed=0)
        with pytest.raises(ValueError, match="drain gid"):
            run_hier_service(
                13, store, cfg, jobs,
                hier=HierConfig(ngroups=3),
                elastic=ElasticConfig(drains=((7, 5.0),)),
            )


# ----------------------------------------------------------------------
# oracle identity: fault-free, join, drain
# ----------------------------------------------------------------------
class TestOracleIdentity:
    @pytest.mark.parametrize("mode", ["replicate", "shard"])
    def test_fault_free_matches_serial(
        self, staged, small_queries, serial_reference, mode
    ):
        sres, _store, _cfg = _serve(staged, small_queries, mode=mode)
        assert sres.report == serial_reference
        assert sres.degraded_queries == 0 and sres.shed_queries == 0
        _answered_exactly_once(sres, small_queries)

    @pytest.mark.parametrize("mode", ["replicate", "shard"])
    def test_runtime_join_matches_serial(
        self, staged, small_queries, serial_reference, mode
    ):
        sres, _store, _cfg = _serve(
            staged, small_queries, nprocs=17, mode=mode,
            elastic=ElasticConfig(joins=((4, 5.0),)),
        )
        assert sres.report == serial_reference
        assert sres.regroups >= 1  # the join is a regroup event
        _answered_exactly_once(sres, small_queries)

    @pytest.mark.parametrize("mode", ["replicate", "shard"])
    def test_runtime_drain_matches_serial(
        self, staged, small_queries, serial_reference, mode
    ):
        sres, _store, _cfg = _serve(
            staged, small_queries, mode=mode,
            elastic=ElasticConfig(drains=((0, 6.0),)),
        )
        assert sres.report == serial_reference
        assert sres.regroups >= 1
        _answered_exactly_once(sres, small_queries)

    def test_gauges_exported(self, staged, small_queries):
        sres, _store, _cfg = _serve(staged, small_queries)
        gauges = sres.result.metrics["global"]["gauges"]
        assert gauges["hier.ngroups"] == 3
        assert gauges["service.waves"] == sres.waves
        assert gauges["service.degraded_queries"] == 0
        assert gauges["service.shed_queries"] == 0
        assert 0.0 <= gauges["hier.group_coord_wait_share_max"] <= 1.0


# ----------------------------------------------------------------------
# failover domains through the service path
# ----------------------------------------------------------------------
class TestFailover:
    def test_submaster_kill(self, staged, small_queries, serial_reference):
        sres, _store, _cfg = _serve(
            staged, small_queries, faults="crash=submaster:g1@6"
        )
        assert sres.report == serial_reference
        _answered_exactly_once(sres, small_queries)

    def test_coordinator_kill(self, staged, small_queries, serial_reference):
        sres, _store, _cfg = _serve(
            staged, small_queries, faults="crash=coordinator@6"
        )
        assert sres.report == serial_reference
        _answered_exactly_once(sres, small_queries)


# ----------------------------------------------------------------------
# whole-group loss: recovery, re-replication, degradation
# ----------------------------------------------------------------------
class TestGroupLoss:
    def test_replicate_group_kill_recovers(
        self, staged, small_queries, serial_reference
    ):
        # Under replicate, surviving groups hold the whole database —
        # the dead group's waves are simply re-routed.
        sres, _store, _cfg = _serve(
            staged, small_queries, faults="crash=group:g1@6"
        )
        assert sres.report == serial_reference
        assert sres.degraded_queries == 0
        _answered_exactly_once(sres, small_queries)

    def test_shard_group_kill_rereplicates(
        self, staged, small_queries, serial_reference
    ):
        # Under shard, the dead group's fragment slice must be
        # re-replicated from the shared FS onto survivors before the
        # affected waves can finalize — still byte-identical.
        sres, _store, _cfg = _serve(
            staged, small_queries, mode="shard", faults="crash=group:g1@6"
        )
        assert sres.report == serial_reference
        assert sres.degraded_queries == 0
        assert sres.regroups >= 1  # group loss + re-replication span
        _answered_exactly_once(sres, small_queries)

    def test_early_redispatch_is_byte_safe(
        self, staged, small_queries, serial_reference
    ):
        # redispatch_timeout decouples work stealing from death
        # detection: a tiny patience steals the dead group's in-flight
        # wave long before the liveness budget expires, and first-wins
        # dedupe keeps the output byte-identical regardless.
        sres, _store, _cfg = _serve(
            staged, small_queries, faults="crash=group:g1@6",
            elastic=ElasticConfig(redispatch_timeout=20.0),
        )
        assert sres.report == serial_reference
        assert sres.degraded_queries == 0
        _answered_exactly_once(sres, small_queries)

    def test_unrecoverable_loss_degrades_but_completes(
        self, staged, small_queries, serial_reference
    ):
        # recovery_attempts=0 turns the group kill into permanent
        # fragment loss: the run must still complete, with the lost
        # slice accounted per query instead of hanging or crashing.
        sres, _store, _cfg = _serve(
            staged, small_queries, mode="shard", faults="crash=group:g1@6",
            elastic=ElasticConfig(recovery_attempts=0),
        )
        _answered_exactly_once(sres, small_queries)
        assert sres.degraded_queries >= 1
        assert sres.report != serial_reference
        assert sres.result.fault_report.degraded
        topo = sres.topology
        lost = set(topo.frag_ids(1))
        rows = [r for r in sres.per_query if "degraded" in r]
        assert len(rows) == sres.degraded_queries
        for row in rows:
            assert row["degraded"] == "missing-fragments"
            assert set(row["missing"]) <= lost and row["missing"]


# ----------------------------------------------------------------------
# SLO-preserving admission shedding
# ----------------------------------------------------------------------
class TestShedding:
    def test_burst_sheds_at_threshold(self, staged, small_queries):
        sres, _store, _cfg = _serve(
            staged, small_queries, rate=50.0,
            service=ServiceConfig(shed_threshold=4),
        )
        assert sres.shed_queries >= 1
        _answered_exactly_once(sres, small_queries)
        for row in sres.per_query:
            if row.get("shed"):
                assert "completed" not in row and "latency_s" not in row


# ----------------------------------------------------------------------
# chaos tier: np=64/K=4 kill sweep + elastic-schedule property
# ----------------------------------------------------------------------
SERVICE_KILLS = [
    ("replicate", "crash=group:g2@4"),
    ("replicate", "crash=submaster:g0@2,crash=coordinator@6"),
    ("replicate", "crash=group:g1@3,crash=submaster:g3@5"),
    ("shard", "crash=group:g1@4"),
    ("shard", "crash=coordinator@3"),
    ("shard", "crash=submaster:g2@2,crash=group:g0@6"),
]


@pytest.mark.chaos
@pytest.mark.parametrize("mode,faults", SERVICE_KILLS)
def test_chaos_service_kill_sweep(
    staged, small_queries, serial_reference, mode, faults
):
    """np=64, K=4, Poisson stream: every recoverable kill schedule
    leaves the service byte-identical to the oracle with each query
    answered exactly once."""
    sres, _store, _cfg = _serve(
        staged, small_queries, nprocs=64, ngroups=4, mode=mode,
        faults=faults,
    )
    assert sres.report == serial_reference
    assert sres.degraded_queries == 0
    _answered_exactly_once(sres, small_queries)


@pytest.mark.chaos
@given(
    mode=st.sampled_from(["replicate", "shard"]),
    join=st.sampled_from([None, (3, 2.0), (4, 6.0)]),
    drain=st.sampled_from([None, (0, 3.0), (1, 8.0)]),
)
@settings(max_examples=10, deadline=None)
def test_property_join_leave_never_drops_or_duplicates(
    small_db, small_queries, serial_reference, mode, join, drain
):
    """Any join/leave schedule preserves the admitted stream: no query
    dropped, none answered twice, output byte-identical."""
    store = FileStore()
    cfg = ParallelConfig(cost=CostModel())
    cfg = stage_inputs(store, small_db, small_queries, config=cfg,
                       title="test nr")
    ecfg = ElasticConfig(
        joins=(join,) if join else (),
        drains=(drain,) if drain else (),
    )
    nprocs = 13 + (join[0] if join else 0)
    jobs = poisson_arrivals(small_queries, rate=0.5, seed=0)
    sres = run_hier_service(
        nprocs, store, cfg, jobs,
        hier=HierConfig(ngroups=3, mode=mode), elastic=ecfg,
    )
    assert sres.report == serial_reference
    _answered_exactly_once(sres, small_queries)
