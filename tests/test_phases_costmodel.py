"""Phase breakdown accounting and the cost model."""

import pytest

from repro.blast.engine import SearchStats
from repro.costmodel import PAPER_SCALE, UNIT_COSTS, CostModel
from repro.parallel import breakdown_from_run, run_pioblast
from repro.parallel.phases import PhaseBreakdown
from repro.platforms import ORNL_ALTIX
from repro.simmpi import PlatformSpec, run


class TestCostModel:
    def test_search_seconds_zero_for_empty_stats(self):
        c = CostModel()
        assert c.search_seconds(SearchStats(), nqueries=0) == 0.0

    def test_search_seconds_scale_linear(self):
        stats = SearchStats(letters_scanned=10**6, word_hits=1000,
                            triggers=100, ungapped_extensions=50,
                            gapped_extensions=5)
        c1 = CostModel(compute_scale=1.0)
        c2 = CostModel(compute_scale=4.0)
        assert c2.search_seconds(stats, nqueries=3) == pytest.approx(
            4 * c1.search_seconds(stats, nqueries=3)
        )

    def test_setup_cost_scales_with_fragments(self):
        c = CostModel()
        s = SearchStats()
        one = c.search_seconds(s, nqueries=10, nfragments=1)
        five = c.search_seconds(s, nqueries=10, nfragments=5)
        assert five == pytest.approx(5 * one)

    def test_data_scale_affects_result_costs_only(self):
        a = CostModel(data_scale=1.0)
        b = CostModel(data_scale=10.0)
        assert b.render_seconds(100) == pytest.approx(
            10 * a.render_seconds(100)
        )
        assert b.merge_seconds(7) == pytest.approx(10 * a.merge_seconds(7))
        assert b.fetch_overhead_seconds() == pytest.approx(
            10 * a.fetch_overhead_seconds()
        )
        s = SearchStats(letters_scanned=100)
        assert b.search_seconds(s, nqueries=1) == a.search_seconds(
            s, nqueries=1
        )

    def test_wire_bytes(self):
        c = CostModel(data_scale=250.0, db_scale=6000.0)
        assert c.wire_bytes(100) == 25_000
        assert c.db_wire_bytes(100) == 600_000

    def test_copy_chunk_overhead(self):
        c = CostModel()
        assert c.copy_chunk_overhead_seconds(
            1024 * 1024, 0.001, chunk=256 * 1024
        ) == pytest.approx(0.004)
        assert c.copy_chunk_overhead_seconds(10, 0.001) == pytest.approx(
            0.001
        )

    def test_scaled_copies(self):
        c = UNIT_COSTS.scaled(compute=3.0, data=5.0, db=7.0)
        assert (c.compute_scale, c.data_scale, c.db_scale) == (3.0, 5.0, 7.0)
        assert UNIT_COSTS.compute_scale == 1.0  # original untouched

    def test_paper_scale_sanity(self):
        assert PAPER_SCALE.compute_scale > 1
        assert PAPER_SCALE.db_scale > PAPER_SCALE.data_scale

    def test_init_seconds(self):
        c = CostModel(per_process_init=0.01, compute_scale=100.0)
        assert c.init_seconds() == pytest.approx(1.0)


class TestPhaseBreakdown:
    def _run(self):
        def prog(ctx):
            with ctx.phase("copy"):
                ctx.compute(1.0)
            with ctx.phase("search"):
                ctx.compute(2.0 + ctx.rank)
            with ctx.phase("output"):
                ctx.compute(0.5)
            ctx.compute(0.25)  # unattributed -> "other"
            ctx.comm.barrier()

        return run(3, prog, PlatformSpec())

    def test_breakdown_fields(self):
        b = breakdown_from_run("x", self._run())
        assert b.copy_input == pytest.approx(1.0)
        assert b.search == pytest.approx(4.0)  # max over ranks
        assert b.output == pytest.approx(0.5)
        assert b.total == pytest.approx(b.copy_input + b.search + b.output
                                        + b.other, abs=1e-6)
        assert b.other > 0

    def test_search_share(self):
        b = PhaseBreakdown("p", 4, 1.0, 8.0, 1.0, 0.0, 10.0)
        assert b.search_share == pytest.approx(0.8)
        assert b.non_search == pytest.approx(2.0)

    def test_row_dict(self):
        b = PhaseBreakdown("p", 4, 1.0, 2.0, 3.0, 4.0, 10.0)
        assert b.row() == {
            "copy_input": 1.0,
            "search": 2.0,
            "output": 3.0,
            "other": 4.0,
            "total": 10.0,
        }

    def test_input_and_copy_both_counted(self):
        def prog(ctx):
            with ctx.phase("input"):
                ctx.compute(1.0)
            with ctx.phase("copy"):
                ctx.compute(2.0)

        b = breakdown_from_run("x", run(2, prog, PlatformSpec()))
        assert b.copy_input == pytest.approx(3.0)

    def test_zero_total_share(self):
        b = PhaseBreakdown("p", 1, 0, 0, 0, 0, 0)
        assert b.search_share == 0.0


class TestDriverPhases:
    def test_pioblast_records_expected_phases(self, staged):
        store, cfg = staged
        res = run_pioblast(4, store, cfg, ORNL_ALTIX)
        phases = {k for p in res.phase_times for k in p}
        assert {"input", "search", "output"} <= phases

    def test_mpiblast_records_expected_phases(self, staged):
        from repro.parallel import mpiformatdb, run_mpiblast

        store, cfg = staged
        mpiformatdb(store, cfg.db_name, 3)
        res = run_mpiblast(4, store, cfg, ORNL_ALTIX)
        phases = {k for p in res.phase_times for k in p}
        assert {"copy", "search", "output"} <= phases
        # master owns output; workers own copy/search
        assert "output" in res.phase_times[0]
        assert "copy" in res.phase_times[1]
