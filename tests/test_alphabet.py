"""Unit tests for residue alphabets and encodings."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.blast.alphabet import (
    DNA,
    NUM_STD_AA,
    NUM_STD_NT,
    PROTEIN,
    alphabet_for_program,
)


class TestProteinAlphabet:
    def test_has_24_letters(self):
        assert len(PROTEIN) == 24

    def test_standard_residues_come_first(self):
        assert PROTEIN.letters[:NUM_STD_AA] == "ARNDCQEGHILKMFPSTWYV"

    def test_ambiguity_codes_present(self):
        for ch in "BZX*":
            assert ch in PROTEIN.letters

    def test_encode_known_residues(self):
        codes = PROTEIN.encode("ARN")
        assert list(codes) == [0, 1, 2]

    def test_encode_is_case_insensitive(self):
        assert np.array_equal(PROTEIN.encode("mkv"), PROTEIN.encode("MKV"))

    def test_unknown_letter_maps_to_wildcard(self):
        assert PROTEIN.encode("J")[0] == PROTEIN.wildcard_code

    def test_decode_round_trip(self):
        s = "MKVLAWYRNDCQEGHISTPF"
        assert PROTEIN.decode(PROTEIN.encode(s)) == s

    def test_decode_accepts_bytes(self):
        assert PROTEIN.decode(bytes([0, 1, 2])) == "ARN"

    def test_strict_validation(self):
        assert PROTEIN.is_valid_strict("MKVX*BZ")
        assert not PROTEIN.is_valid_strict("MKO")  # O not in alphabet

    def test_encode_dtype_and_shape(self):
        codes = PROTEIN.encode("MKV")
        assert codes.dtype == np.uint8
        assert codes.shape == (3,)

    def test_empty_sequence(self):
        assert len(PROTEIN.encode("")) == 0
        assert PROTEIN.decode(np.array([], dtype=np.uint8)) == ""


class TestDnaAlphabet:
    def test_letters(self):
        assert DNA.letters == "ACGTN"
        assert NUM_STD_NT == 4

    def test_wildcard_is_n(self):
        assert DNA.wildcard == "N"
        assert DNA.encode("X")[0] == DNA.wildcard_code

    def test_round_trip(self):
        s = "ACGTACGTNN"
        assert DNA.decode(DNA.encode(s)) == s


class TestAlphabetForProgram:
    def test_blastp(self):
        assert alphabet_for_program("blastp") is PROTEIN

    def test_blastn(self):
        assert alphabet_for_program("blastn") is DNA

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            alphabet_for_program("tblastx")


@given(st.text(alphabet="ARNDCQEGHILKMFPSTWYVBZX*", max_size=200))
def test_protein_round_trip_property(s):
    assert PROTEIN.decode(PROTEIN.encode(s)) == s.upper()


@given(st.text(alphabet="ACGTN", max_size=200))
def test_dna_round_trip_property(s):
    assert DNA.decode(DNA.encode(s)) == s.upper()


@given(st.text(max_size=100))
def test_encode_never_fails_and_stays_in_range(s):
    codes = PROTEIN.encode(s)
    assert (codes < len(PROTEIN)).all() if len(codes) else True
