"""Query batching / pipelined output (§5 future work, implemented)."""

from dataclasses import replace

import pytest

from repro.costmodel import CostModel
from repro.parallel import ParallelConfig, run_pioblast, stage_inputs
from repro.simmpi import FileStore


class TestBatchArithmetic:
    def test_zero_means_one_round(self):
        assert ParallelConfig(query_batch=0).query_batches(7) == [(0, 7)]

    def test_batch_bigger_than_queries(self):
        assert ParallelConfig(query_batch=99).query_batches(7) == [(0, 7)]

    def test_even_split(self):
        assert ParallelConfig(query_batch=3).query_batches(9) == [
            (0, 3), (3, 6), (6, 9)
        ]

    def test_ragged_tail(self):
        assert ParallelConfig(query_batch=4).query_batches(10) == [
            (0, 4), (4, 8), (8, 10)
        ]

    def test_batches_cover_exactly(self):
        for qb in (1, 2, 3, 5, 8):
            batches = ParallelConfig(query_batch=qb).query_batches(13)
            flat = [i for lo, hi in batches for i in range(lo, hi)]
            assert flat == list(range(13))


class TestBatchedRuns:
    @pytest.fixture()
    def make_staged(self, small_db, small_queries):
        def _make(**cfg_kwargs):
            store = FileStore()
            cfg = ParallelConfig(cost=CostModel(), **cfg_kwargs)
            cfg = stage_inputs(store, small_db, small_queries, config=cfg,
                               title="test nr")
            return store, cfg

        return _make

    @pytest.mark.parametrize("batch", [1, 2, 5])
    def test_output_identical_across_batch_sizes(
        self, make_staged, serial_reference, batch
    ):
        store, cfg = make_staged(query_batch=batch)
        run_pioblast(4, store, cfg)
        assert store.read_all(cfg.output_path) == serial_reference

    def test_batching_composes_with_pruning(
        self, make_staged, serial_reference
    ):
        store, cfg = make_staged(query_batch=3, early_score_pruning=True)
        run_pioblast(4, store, cfg)
        assert store.read_all(cfg.output_path) == serial_reference

    def test_batching_composes_with_serialized_output(
        self, make_staged, serial_reference
    ):
        store, cfg = make_staged(query_batch=3, collective_output=False)
        run_pioblast(4, store, cfg)
        assert store.read_all(cfg.output_path) == serial_reference

    def test_batching_composes_with_adaptive_granularity(
        self, make_staged, serial_reference
    ):
        store, cfg = make_staged(query_batch=4, adaptive_granularity=True)
        run_pioblast(4, store, cfg)
        assert store.read_all(cfg.output_path) == serial_reference

    def test_more_collective_writes_with_smaller_batches(
        self, make_staged
    ):
        """One collective write per round: fs write-op count reflects the
        pipelining."""
        store1, cfg1 = make_staged(query_batch=0)
        r1 = run_pioblast(4, store1, cfg1)
        store2, cfg2 = make_staged(query_batch=2)
        r2 = run_pioblast(4, store2, cfg2)
        assert r2.fs_write_ops > r1.fs_write_ops

    def test_batch_size_one_is_fully_pipelined(
        self, make_staged, serial_reference, small_queries
    ):
        store, cfg = make_staged(query_batch=1)
        res = run_pioblast(3, store, cfg)
        assert store.read_all(cfg.output_path) == serial_reference
        # One write round per query (plus none extra).
        assert res.fs_write_ops >= len(small_queries)
