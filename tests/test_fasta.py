"""Unit + property tests for FASTA parsing and formatting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.blast.fasta import (
    FastaError,
    SeqRecord,
    format_record,
    iter_fasta,
    parse_fasta,
    write_fasta,
)


class TestParse:
    def test_single_record(self):
        recs = parse_fasta(">id1 a defline\nMKV\nLAW\n")
        assert len(recs) == 1
        assert recs[0].defline == "id1 a defline"
        assert recs[0].sequence == "MKVLAW"

    def test_multiple_records(self):
        recs = parse_fasta(">a\nAA\n>b\nCC\n>c\nGG\n")
        assert [r.defline for r in recs] == ["a", "b", "c"]
        assert [r.sequence for r in recs] == ["AA", "CC", "GG"]

    def test_blank_lines_ignored(self):
        recs = parse_fasta("\n>a\n\nAAA\n\n\n>b\nCC\n")
        assert [r.sequence for r in recs] == ["AAA", "CC"]

    def test_crlf_endings(self):
        recs = parse_fasta(">a desc\r\nMK\r\nVL\r\n")
        assert recs[0].sequence == "MKVL"

    def test_legacy_comment_lines(self):
        recs = parse_fasta("; comment\n>a\nMK\n")
        assert recs[0].sequence == "MK"

    def test_bytes_input(self):
        recs = parse_fasta(b">a\nMK\n")
        assert recs[0].sequence == "MK"

    def test_sequence_before_defline_raises(self):
        with pytest.raises(FastaError):
            parse_fasta("MKV\n>a\nMK\n")

    def test_empty_input(self):
        assert parse_fasta("") == []

    def test_empty_sequence_record(self):
        recs = parse_fasta(">a\n>b\nMK\n")
        assert recs[0].sequence == ""
        assert recs[1].sequence == "MK"

    def test_record_id_is_first_token(self):
        rec = SeqRecord("gi|123|ref def here", "MK")
        assert rec.id == "gi|123|ref"

    def test_iter_is_lazy_compatible(self):
        it = iter_fasta(">a\nMK\n>b\nVL\n")
        assert next(it).defline == "a"
        assert next(it).defline == "b"


class TestFormat:
    def test_wrapping_at_width(self):
        rec = SeqRecord("x", "A" * 125)
        out = format_record(rec, width=60)
        lines = out.splitlines()
        assert lines[0] == ">x"
        assert [len(x) for x in lines[1:]] == [60, 60, 5]

    def test_trailing_newline(self):
        assert format_record(SeqRecord("x", "MK")).endswith("\n")

    def test_bad_width_raises(self):
        with pytest.raises(ValueError):
            format_record(SeqRecord("x", "MK"), width=0)

    def test_write_concatenates(self):
        recs = [SeqRecord("a", "MK"), SeqRecord("b", "VL")]
        assert write_fasta(recs) == ">a\nMK\n>b\nVL\n"


_deflines = st.text(
    alphabet=st.characters(
        codec="ascii", exclude_characters=">\n\r;", categories=("L", "N", "P", "Zs")
    ),
    min_size=1,
    max_size=40,
).map(str.strip).filter(lambda s: s and not s.startswith(">"))

_seqs = st.text(alphabet="ARNDCQEGHILKMFPSTWYV", min_size=0, max_size=300)


@given(st.lists(st.tuples(_deflines, _seqs), min_size=1, max_size=8))
def test_round_trip_property(pairs):
    recs = [SeqRecord(d, s) for d, s in pairs]
    parsed = parse_fasta(write_fasta(recs))
    assert [(r.defline, r.sequence) for r in parsed] == [
        (r.defline, r.sequence) for r in recs
    ]


@given(st.lists(st.tuples(_deflines, _seqs), min_size=1, max_size=5),
       st.integers(min_value=1, max_value=120))
def test_round_trip_any_width(pairs, width):
    recs = [SeqRecord(d, s) for d, s in pairs]
    text = "".join(format_record(r, width) for r in recs)
    parsed = parse_fasta(text)
    assert [r.sequence for r in parsed] == [r.sequence for r in recs]
