"""Checkpoint/restart suite: crash-consistent snapshots, failover.

Covers the killable-master acceptance criteria (see FAULTS.md §4):

- the crash-consistent framed-file primitive (magic + length + CRC-32,
  write-temp → atomic rename) and every corruption it must catch;
- :class:`repro.parallel.CheckpointStore` save/prune/restore, including
  falling back past torn-write / bit-flip damaged snapshots;
- :class:`repro.parallel.FailoverTracker` succession semantics;
- end-to-end master kills (``kill=0``) against both FT drivers —
  recovered output byte-identical to the serial oracle, with and
  without a checkpoint to restore, replayed bit-for-bit.

Timing constants in the end-to-end tests are tuned to the small
workload: searches finish ~0.04 virtual seconds in, the output pass
runs to ~0.2, and the master lingers 1.0 afterwards.  A kill inside
(0.0, 0.2) therefore exercises real recovery; the checkpoint intervals
are chosen so at least one snapshot lands before the kill.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.parallel import (
    CheckpointStore,
    FTParams,
    FailoverTracker,
    ParallelConfig,
    mpiformatdb,
    run_mpiblast,
    run_pioblast,
)
from repro.simmpi import (
    BitFlipFault,
    CorruptFileError,
    CrashFault,
    FaultPlan,
    FileStore,
    TornWriteFault,
)
from repro.simmpi.filesystem import (
    ATOMIC_MAGIC,
    frame_payload,
    unframe_payload,
)
from repro.simmpi.launcher import run


# ----------------------------------------------------------------------
# The checksummed frame (pure functions, no simulator needed)
# ----------------------------------------------------------------------
class TestFrame:
    def test_roundtrip(self):
        payload = b"scheduler state" * 100
        assert unframe_payload("p", frame_payload(payload)) == payload

    def test_empty_payload_roundtrips(self):
        assert unframe_payload("p", frame_payload(b"")) == b""

    def test_truncated_header(self):
        with pytest.raises(CorruptFileError, match="truncated header"):
            unframe_payload("p", ATOMIC_MAGIC[:3])

    def test_bad_magic(self):
        framed = bytearray(frame_payload(b"data"))
        framed[0] ^= 0xFF
        with pytest.raises(CorruptFileError, match="bad magic"):
            unframe_payload("p", bytes(framed))

    def test_truncated_payload(self):
        framed = frame_payload(b"data" * 64)
        with pytest.raises(CorruptFileError, match="truncated payload"):
            unframe_payload("p", framed[: len(framed) // 2])

    def test_checksum_mismatch(self):
        framed = bytearray(frame_payload(b"data" * 64))
        framed[-1] ^= 0x01  # flip a payload bit, header intact
        with pytest.raises(CorruptFileError, match="checksum mismatch"):
            unframe_payload("p", bytes(framed))

    def test_error_carries_path(self):
        with pytest.raises(CorruptFileError) as ei:
            unframe_payload("_ckpt/ckpt-000003.ckpt", b"")
        assert ei.value.path == "_ckpt/ckpt-000003.ckpt"


# ----------------------------------------------------------------------
# write_atomic / read_atomic on the simulated filesystem
# ----------------------------------------------------------------------
def _solo(body):
    """Run ``body(ctx)`` on a 1-rank cluster; returns (result, store)."""
    store = FileStore()
    res = run(1, body, shared_store=store)
    return res.rank_results[0], store


class TestAtomicFiles:
    def test_roundtrip_and_no_temp_residue(self):
        def body(ctx):
            ctx.fs.write_atomic("dir/state", b"v1")
            ctx.fs.write_atomic("dir/state", b"v2-longer-than-v1")
            return ctx.fs.read_atomic("dir/state")

        got, store = _solo(body)
        assert got == b"v2-longer-than-v1"
        assert store.listdir("dir/") == ["dir/state"]  # tmp renamed away

    def test_plain_read_sees_frame(self):
        def body(ctx):
            ctx.fs.write_atomic("f", b"payload")
            return ctx.fs.read("f")

        got, _store = _solo(body)
        assert got.startswith(ATOMIC_MAGIC)
        assert unframe_payload("f", got) == b"payload"

    def test_torn_write_detected_on_read(self):
        plan = FaultPlan(
            events=(TornWriteFault(path_prefix="ck/", count=1),)
        )

        def body(ctx):
            ctx.fs.write_atomic("ck/a", b"x" * 512)
            try:
                ctx.fs.read_atomic("ck/a")
            except CorruptFileError as e:
                return e.why
            return "undetected"

        store = FileStore()
        res = run(1, body, shared_store=store, faults=plan)
        assert res.rank_results[0].startswith("truncated payload")
        assert res.fault_report.count("inject:torn-write") == 1

    def test_bit_flip_detected_on_read(self):
        plan = FaultPlan(
            events=(BitFlipFault(path_prefix="ck/", count=1),)
        )

        def body(ctx):
            ctx.fs.write_atomic("ck/a", b"x" * 512)
            try:
                ctx.fs.read_atomic("ck/a")
            except CorruptFileError as e:
                return e.why
            return "undetected"

        store = FileStore()
        res = run(1, body, shared_store=store, faults=plan)
        assert res.rank_results[0] == "checksum mismatch"
        assert res.fault_report.count("inject:bit-flip") == 1


# ----------------------------------------------------------------------
# CheckpointStore: numbering, pruning, interval gating, fallback
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_save_load_roundtrip(self):
        def body(ctx):
            ck = CheckpointStore(ctx, "_ckpt", interval=0.1)
            state = {"frag_results": {0: ["m"]}, "holders": {0: (1, 2)}}
            ck.save(state)
            return CheckpointStore(ctx, "_ckpt", interval=0.1).load_latest()

        got, store = _solo(body)
        assert got == {"frag_results": {0: ["m"]}, "holders": {0: (1, 2)}}
        assert store.listdir("_ckpt/") == ["_ckpt/ckpt-000000.ckpt"]

    def test_prune_keeps_last_two(self):
        def body(ctx):
            ck = CheckpointStore(ctx, "_ckpt", interval=0.1)
            for i in range(5):
                ck.save({"i": i})
            return ck.load_latest()

        got, store = _solo(body)
        assert got == {"i": 4}
        assert store.listdir("_ckpt/") == [
            "_ckpt/ckpt-000003.ckpt", "_ckpt/ckpt-000004.ckpt",
        ]

    def test_numbering_resumes_after_restart(self):
        """A promoted master's store continues the sequence instead of
        overwriting the snapshots it may still need to read."""

        def body(ctx):
            CheckpointStore(ctx, "_ckpt", interval=0.1).save({"gen": 0})
            ck2 = CheckpointStore(ctx, "_ckpt", interval=0.1)
            path = ck2.save({"gen": 1})
            return path

        got, store = _solo(body)
        assert got == "_ckpt/ckpt-000001.ckpt"
        assert len(store.listdir("_ckpt/")) == 2

    def test_maybe_save_is_interval_gated(self):
        def body(ctx):
            ck = CheckpointStore(ctx, "_ckpt", interval=0.5)
            first = ck.maybe_save(lambda: {"n": 1})   # 0.0 elapsed
            ctx.engine.sleep(0.3)
            second = ck.maybe_save(lambda: {"n": 2})  # 0.3 < 0.5
            ctx.engine.sleep(0.3)
            third = ck.maybe_save(lambda: {"n": 3})   # 0.6 >= 0.5
            return (first, second, third, ck.load_latest())

        got, _store = _solo(body)
        assert got == (False, False, True, {"n": 3})

    def test_disabled_interval_never_saves_but_loads(self):
        def body(ctx):
            CheckpointStore(ctx, "_ckpt", interval=1.0).save({"x": 1})
            off = CheckpointStore(ctx, "_ckpt", interval=0.0)
            assert not off.enabled
            saved = off.maybe_save(lambda: {"x": 2})
            return (saved, off.load_latest())

        got, _store = _solo(body)
        assert got == (False, {"x": 1})

    def test_corrupt_latest_falls_back_to_previous(self):
        plan = FaultPlan(
            # skip the first framed write, damage the second
            events=(BitFlipFault(path_prefix="_ckpt/", start=0.001),)
        )

        def body(ctx):
            ck = CheckpointStore(ctx, "_ckpt", interval=0.1)
            ck.save({"gen": 0})
            ctx.engine.sleep(0.01)
            ck.save({"gen": 1})  # bit-flipped in flight
            return ck.load_latest()

        store = FileStore()
        res = run(1, body, shared_store=store, faults=plan)
        assert res.rank_results[0] == {"gen": 0}
        rep = res.fault_report
        assert rep.count("detect:checkpoint-corrupt") == 1
        assert rep.count("recover:restore-checkpoint") == 1

    def test_all_corrupt_returns_none(self):
        plan = FaultPlan(
            events=(TornWriteFault(path_prefix="_ckpt/", count=10),)
        )

        def body(ctx):
            ck = CheckpointStore(ctx, "_ckpt", interval=0.1)
            ck.save({"gen": 0})
            ck.save({"gen": 1})
            return ck.load_latest()

        store = FileStore()
        res = run(1, body, shared_store=store, faults=plan)
        assert res.rank_results[0] is None
        assert res.fault_report.count("detect:checkpoint-corrupt") == 2

    def test_empty_directory_returns_none(self):
        def body(ctx):
            return CheckpointStore(ctx, "_ckpt", interval=0.1).load_latest()

        got, _store = _solo(body)
        assert got is None


# ----------------------------------------------------------------------
# FailoverTracker succession semantics
# ----------------------------------------------------------------------
def _tracker_run(body):
    """Run ``body(tracker, ctx)`` on rank 4 of a 5-rank cluster."""
    out = {}

    def program(ctx):
        if ctx.rank == 4:
            out["v"] = body(FailoverTracker(ctx, FTParams()), ctx)
        return None

    res = run(5, program)
    return out["v"], res.fault_report


_SILENCE = FTParams().failover_silence + 0.1


class TestFailoverTracker:
    def test_silence_advances_candidate(self):
        def body(fo, ctx):
            assert not fo.tick()  # just started: not silent yet
            ctx.engine.sleep(_SILENCE)
            assert fo.tick()
            return (fo.master, fo.guessing)

        got, rep = _tracker_run(body)
        assert got == (1, True)
        assert rep.count("detect:master-dead") == 1

    def test_succession_reaches_own_rank(self):
        def body(fo, ctx):
            for expect in (1, 2, 3):
                ctx.engine.sleep(_SILENCE)
                assert fo.tick()
                assert fo.master == expect
                assert not fo.promoted
            ctx.engine.sleep(_SILENCE)
            fo.tick()  # candidate 4 == own rank
            return fo.promoted

        got, _rep = _tracker_run(body)
        assert got is True

    def test_heard_resets_the_clock(self):
        def body(fo, ctx):
            silence = FTParams().failover_silence
            ctx.engine.sleep(silence * 0.9)
            fo.heard()
            ctx.engine.sleep(silence * 0.9)
            return fo.tick()  # only 0.9 silences since heard()

        got, _rep = _tracker_run(body)
        assert got is False

    def test_real_announcer_beats_a_guess(self):
        """A worker whose candidate ticked *past* the true successor
        must fall back to the rank that actually announced itself."""

        def body(fo, ctx):
            ctx.engine.sleep(_SILENCE)
            fo.tick()                      # guessing master=1
            changed = fo.announce(1)       # 1 really speaks
            assert not changed             # same rank: just heard()
            assert not fo.guessing
            for _ in range(2):             # 1 goes quiet again
                ctx.engine.sleep(_SILENCE)
                fo.tick()
            assert fo.master == 3          # guessed past rank 1
            rehomed = fo.announce(1)       # the real master pings
            return (rehomed, fo.master, fo.guessing)

        got, _rep = _tracker_run(body)
        assert got == (True, 1, False)

    def test_real_master_only_displaced_by_higher_rank(self):
        def body(fo, ctx):
            fo.announce(3)                 # adopted: higher than 0
            assert fo.master == 3
            low = fo.announce(1)           # lower real master: ignored
            high = fo.announce(3)          # steady state
            return (low, high, fo.master)

        got, _rep = _tracker_run(body)
        assert got == (False, False, 3)

    def test_own_rank_announcement_is_ignored(self):
        def body(fo, ctx):
            return (fo.announce(4), fo.master)

        got, _rep = _tracker_run(body)
        assert got == (False, 0)


# ----------------------------------------------------------------------
# End-to-end: the master is killable (FAULTS.md §4)
# ----------------------------------------------------------------------
def _pio(store, cfg, nprocs, plan):
    res = run_pioblast(nprocs, store, cfg, faults=plan)
    return store.read(cfg.output_path), res


def _mpi(store, cfg, nprocs, plan):
    mpiformatdb(store, cfg.db_name, cfg.fragments_for(nprocs - 1))
    res = run_mpiblast(nprocs, store, cfg, faults=plan)
    return store.read(cfg.output_path), res


def _with_ckpt(cfg, interval):
    return dataclasses.replace(cfg, checkpoint_interval=interval)


class TestMasterKillPioblast:
    def test_kill_master_with_checkpoint_restores(
        self, staged, serial_reference
    ):
        """The headline tentpole test: rank 0 dies mid-run, rank 1
        promotes itself, restores the snapshot, and finishes with
        byte-identical output — no fragment re-searched."""
        store, cfg = staged
        plan = FaultPlan(seed=3, events=(CrashFault(rank=0, time=0.12),))
        out, res = _pio(store, _with_ckpt(cfg, 0.04), 5, plan)
        assert out == serial_reference
        assert res.promotions == (1,)
        assert res.dead_ranks == (0,)
        rep = res.fault_report
        assert rep.count("recover:promote-master") == 1
        assert rep.count("recover:restore-checkpoint") == 1
        assert rep.count("ckpt:save") >= 1
        assert rep.count("recover:research") == 0  # snapshot covered all
        assert not rep.degraded

    def test_kill_master_without_checkpoint_recovers_cold(
        self, staged, serial_reference
    ):
        """Checkpointing off: the successor re-runs the whole pipeline
        from its own setup — slower, still byte-identical."""
        store, cfg = staged
        plan = FaultPlan(seed=3, events=(CrashFault(rank=0, time=0.12),))
        out, res = _pio(store, cfg, 5, plan)
        assert out == serial_reference
        assert res.promotions == (1,)
        rep = res.fault_report
        assert rep.count("recover:restore-checkpoint") == 0
        assert rep.count("ckpt:save") == 0

    @pytest.mark.parametrize("fault_cls", [TornWriteFault, BitFlipFault])
    def test_corrupt_latest_checkpoint_falls_back(
        self, staged, serial_reference, fault_cls
    ):
        """Snapshots land at ~0.041 and ~0.129 with this interval; the
        corruption window opens between them, so the newest replica is
        damaged and the successor must fall back past it."""
        store, cfg = staged
        plan = FaultPlan(
            seed=3,
            events=(
                CrashFault(rank=0, time=0.19),
                fault_cls(path_prefix="_ckpt/", start=0.1, count=1),
            ),
        )
        out, res = _pio(store, _with_ckpt(cfg, 0.04), 5, plan)
        assert out == serial_reference
        assert res.promotions  # someone took over
        rep = res.fault_report
        corrupt = [e.detail[0] for e in rep.events
                   if e.kind == "detect:checkpoint-corrupt"]
        restored = [e.detail[0] for e in rep.events
                    if e.kind == "recover:restore-checkpoint"]
        assert corrupt == ["_ckpt/ckpt-000001.ckpt"]
        assert restored == ["_ckpt/ckpt-000000.ckpt"]

    def test_every_checkpoint_corrupt_recovers_cold(
        self, staged, serial_reference
    ):
        store, cfg = staged
        plan = FaultPlan(
            seed=3,
            events=(
                CrashFault(rank=0, time=0.19),
                TornWriteFault(path_prefix="_ckpt/", start=0.0, count=100),
            ),
        )
        out, res = _pio(store, _with_ckpt(cfg, 0.04), 5, plan)
        assert out == serial_reference
        rep = res.fault_report
        assert rep.count("detect:checkpoint-corrupt") >= 1
        assert rep.count("recover:restore-checkpoint") == 0

    def test_master_kill_replays_identically(self, small_db, small_queries):
        """Bit-for-bit determinism *including* the promotion, restore
        and abdication events in the fault-report comparison key."""
        from repro.costmodel import CostModel
        from repro.parallel import stage_inputs

        plan = FaultPlan(seed=3, events=(CrashFault(rank=0, time=0.12),))
        runs = []
        for _ in range(2):
            store = FileStore()
            cfg = ParallelConfig(cost=CostModel())
            cfg = stage_inputs(store, small_db, small_queries, config=cfg,
                               title="test nr")
            out, res = _pio(store, _with_ckpt(cfg, 0.04), 5, plan)
            runs.append((out, res.makespan, res.promotions,
                         res.fault_report.as_tuple()))
        assert runs[0] == runs[1]
        assert runs[0][2] == (1,)
        kinds = {e[1] for e in runs[0][3][0]}
        assert "recover:promote-master" in kinds
        assert "recover:restore-checkpoint" in kinds


class TestMasterKillMpiblast:
    def test_kill_master_with_checkpoint_restores(
        self, staged, serial_reference
    ):
        store, cfg = staged
        plan = FaultPlan(seed=3, events=(CrashFault(rank=0, time=0.1),))
        out, res = _mpi(store, _with_ckpt(cfg, 0.02), 5, plan)
        assert out == serial_reference
        assert res.promotions == (1,)
        assert res.dead_ranks == (0,)
        rep = res.fault_report
        assert rep.count("recover:promote-master") == 1
        assert rep.count("recover:restore-checkpoint") == 1
        assert rep.count("ckpt:save") >= 1
        assert not rep.degraded

    def test_kill_master_without_checkpoint_recovers_cold(
        self, staged, serial_reference
    ):
        store, cfg = staged
        plan = FaultPlan(seed=3, events=(CrashFault(rank=0, time=0.1),))
        out, res = _mpi(store, cfg, 5, plan)
        assert out == serial_reference
        assert res.promotions == (1,)
        assert res.fault_report.count("recover:restore-checkpoint") == 0

    def test_master_kill_replays_identically(self, small_db, small_queries):
        from repro.costmodel import CostModel
        from repro.parallel import stage_inputs

        plan = FaultPlan(seed=3, events=(CrashFault(rank=0, time=0.1),))
        runs = []
        for _ in range(2):
            store = FileStore()
            cfg = ParallelConfig(cost=CostModel())
            cfg = stage_inputs(store, small_db, small_queries, config=cfg,
                               title="test nr")
            out, res = _mpi(store, _with_ckpt(cfg, 0.02), 5, plan)
            runs.append((out, res.makespan, res.promotions,
                         res.fault_report.as_tuple()))
        assert runs[0] == runs[1]
        assert runs[0][2] == (1,)
        kinds = {e[1] for e in runs[0][3][0]}
        assert "recover:promote-master" in kinds
        assert "recover:restore-checkpoint" in kinds


# ----------------------------------------------------------------------
# Satellite: query_batch is rejected under fault tolerance
# ----------------------------------------------------------------------
class TestQueryBatchRejected:
    def test_pioblast(self, staged):
        store, cfg = staged
        cfg = dataclasses.replace(cfg, query_batch=100)
        plan = FaultPlan(events=(CrashFault(rank=1, time=0.02),))
        with pytest.raises(ValueError, match="query_batch"):
            run_pioblast(5, store, cfg, faults=plan)

    def test_mpiblast(self, staged):
        store, cfg = staged
        cfg = dataclasses.replace(cfg, query_batch=100)
        mpiformatdb(store, cfg.db_name, cfg.fragments_for(4))
        plan = FaultPlan(events=(CrashFault(rank=1, time=0.02),))
        with pytest.raises(ValueError, match="query_batch"):
            run_mpiblast(5, store, cfg, faults=plan)

    def test_batching_still_fine_without_faults(self, staged,
                                                serial_reference):
        store, cfg = staged
        cfg = dataclasses.replace(cfg, query_batch=700)
        run_pioblast(5, store, cfg)
        assert store.read(cfg.output_path) == serial_reference


# ----------------------------------------------------------------------
# Chaos sweep: master kills across the whole run (tier 2)
# ----------------------------------------------------------------------
KILL_TIMES = [0.03, 0.08, 0.12, 0.15, 0.2]


@pytest.mark.chaos
@pytest.mark.parametrize("kill_time", KILL_TIMES)
class TestChaosMasterKill:
    def test_pioblast(self, staged, serial_reference, kill_time):
        store, cfg = staged
        plan = FaultPlan(
            seed=3, events=(CrashFault(rank=0, time=kill_time),)
        )
        out, res = _pio(store, _with_ckpt(cfg, 0.04), 5, plan)
        assert out == serial_reference
        assert not res.fault_report.degraded

    def test_mpiblast(self, staged, serial_reference, kill_time):
        store, cfg = staged
        plan = FaultPlan(
            seed=3, events=(CrashFault(rank=0, time=kill_time),)
        )
        out, res = _mpi(store, _with_ckpt(cfg, 0.02), 5, plan)
        assert out == serial_reference
        assert not res.fault_report.degraded
