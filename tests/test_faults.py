"""Chaos suite: deterministic fault injection and FT driver recovery.

Tier-1 tests pin the acceptance behaviour with hand-written plans
(seeded, replayable); the ``chaos``-marked sweeps run randomized
:meth:`FaultPlan.random` plans against both fault-tolerant drivers and
assert the recovery invariant — output byte-identical to the serial
oracle whenever at least one worker survives.  See FAULTS.md.
"""

from __future__ import annotations

import pytest

from repro.parallel import ParallelConfig, mpiformatdb
from repro.parallel.mpiblast import (
    TAG_FT_REPLY as MPI_FT_REPLY,
    TAG_FT_REQ as MPI_FT_REQ,
    run_mpiblast,
)
from repro.parallel.pioblast import (
    TAG_FT_REPLY as PIO_FT_REPLY,
    TAG_FT_REQ as PIO_FT_REQ,
    run_pioblast,
)
from repro.simmpi import FileStore
from repro.simmpi.comm import TIMEOUT
from repro.simmpi.engine import Engine, SimError
from repro.simmpi.faults import (
    ANY,
    BitFlipFault,
    CrashFault,
    DiskSlowdownFault,
    FaultPlan,
    MessageDropFault,
    NetworkSlowdownFault,
    StragglerFault,
    TornWriteFault,
    TransientIOError,
    TransientIOFault,
    retry_io,
)
from repro.simmpi.launcher import run


# ----------------------------------------------------------------------
# FaultPlan construction, parsing and validation
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_all_kinds(self):
        plan = FaultPlan.parse(
            "seed=42, kill=2@0.5, slowdisk=0.2x1.0@0.1,"
            "netslow=3x0.5@0.2, straggler=1x0.3@0.0,"
            "ioerr=nr@0.1n2, drop=1>0:40n2"
        )
        assert plan.seed == 42
        kinds = [type(e).__name__ for e in plan.events]
        assert kinds == [
            "CrashFault", "DiskSlowdownFault", "NetworkSlowdownFault",
            "StragglerFault", "TransientIOFault", "MessageDropFault",
        ]
        assert plan.crashes() == [CrashFault(2, 0.5)]
        drop = plan.events[-1]
        assert (drop.source, drop.dest, drop.tag, drop.count) == (1, 0, 40, 2)

    def test_parse_wildcards(self):
        plan = FaultPlan.parse("drop=*>*:*n3")
        ev = plan.events[0]
        assert (ev.source, ev.dest, ev.tag) == (ANY, ANY, ANY)

    def test_parse_corruption_kinds(self):
        plan = FaultPlan.parse("torn=_ckpt/@0.1n2, bitflip=out@0.0")
        torn, flip = plan.events
        assert torn == TornWriteFault(
            path_prefix="_ckpt/", start=0.1, count=2
        )
        assert flip == BitFlipFault(path_prefix="out", start=0.0, count=1)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("frobnicate=1")
        with pytest.raises(ValueError):
            FaultPlan.parse("kill")

    def test_parse_rejects_duplicate_seed(self):
        with pytest.raises(ValueError, match="duplicate seed"):
            FaultPlan.parse("seed=1,kill=2@0.5,seed=1")
        # a single seed= is of course fine
        assert FaultPlan.parse("seed=9").seed == 9

    def test_unknown_kind_error_lists_valid_kinds(self):
        with pytest.raises(ValueError) as ei:
            FaultPlan.parse("kll=2@0.5")
        msg = str(ei.value)
        assert "'kll'" in msg
        for kind in ("seed", "kill", "slowdisk", "netslow", "straggler",
                     "ioerr", "torn", "bitflip", "drop"):
            assert kind in msg

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(events=(CrashFault(1, -0.5),))
        with pytest.raises(ValueError):
            FaultPlan(events=(DiskSlowdownFault(0.0, 0.0, 0.5),))
        with pytest.raises(ValueError):
            FaultPlan(events=(MessageDropFault(count=0),))
        with pytest.raises(ValueError):
            FaultPlan(events=(StragglerFault(1, 0.0),))

    def test_parse_role_kills(self):
        plan = FaultPlan.parse(
            "crash=coordinator@5, crash=submaster:g2@40, crash=group:g1@60"
        )
        coord, sub, grp = plan.role_crashes()
        assert (coord.role, coord.group, coord.time) == ("coordinator", None, 5.0)
        assert (sub.role, sub.group, sub.time) == ("submaster", 2, 40.0)
        assert (grp.role, grp.group, grp.time) == ("group", 1, 60.0)

    def test_resolve_roles_rewrites_to_concrete_ranks(self):
        from repro.hier import build_topology

        topo = build_topology(13, 3, "replicate")
        plan = FaultPlan.parse(
            "kill=4@1, crash=coordinator@5, crash=submaster:g2@40"
        )
        resolved = plan.resolve_roles(topo.role_rank)
        assert resolved.role_crashes() == []
        assert resolved.crashes() == [
            CrashFault(4, 1.0),
            CrashFault(0, 5.0),
            CrashFault(topo.groups[2].submaster, 40.0),
        ]
        # plans without role kills pass through unchanged (same object)
        plain = FaultPlan.parse("kill=4@1")
        assert plain.resolve_roles(topo.role_rank) is plain

    def test_resolve_group_role_expands_to_every_member(self):
        from repro.hier import build_topology

        topo = build_topology(13, 3, "replicate")
        plan = FaultPlan.parse("crash=group:g1@6")
        resolved = plan.resolve_roles(topo.role_rank)
        assert resolved.role_crashes() == []
        # A whole-group kill is one CrashFault per member rank — the
        # group-loss scenario the elastic hierarchy recovers from.
        assert resolved.crashes() == [
            CrashFault(r, 6.0) for r in topo.groups[1].members
        ]

    def test_role_kill_validation(self):
        with pytest.raises(ValueError, match="unknown crash role"):
            FaultPlan.parse("crash=viceroy@5")
        with pytest.raises(ValueError, match="bad submaster group"):
            FaultPlan.parse("crash=submaster:gX@5")
        with pytest.raises(ValueError, match="bad group group"):
            FaultPlan.parse("crash=group:gX@5")
        with pytest.raises(ValueError, match="group:g<N>"):
            FaultPlan.parse("crash=quorum@5")
        with pytest.raises(ValueError, match="crash in the past"):
            FaultPlan.parse("crash=coordinator@-1")

    def test_random_is_deterministic(self):
        a = FaultPlan.random(7, 6, droppable_tags=(40, 41))
        b = FaultPlan.random(7, 6, droppable_tags=(40, 41))
        assert a == b

    def test_random_never_kills_master_nor_all_workers(self):
        for seed in range(40):
            plan = FaultPlan.random(seed, 5, max_crashes=10)
            crashed = {c.rank for c in plan.crashes()}
            assert 0 not in crashed
            assert len(crashed) <= 3  # of 4 workers

    def test_random_needs_three_ranks(self):
        with pytest.raises(ValueError):
            FaultPlan.random(1, 2)


# ----------------------------------------------------------------------
# Engine primitives: kills, deadlock diagnostics
# ----------------------------------------------------------------------
class TestEngineKills:
    def test_kill_unwinds_parked_rank(self):
        eng = Engine()
        log = []

        def victim():
            p = eng.make_parker(label="recv(src=0, tag=9)")
            eng.park(p)  # nothing will ever wake this
            log.append("unreachable")

        eng.spawn(victim, 0)
        eng.kill_rank_at(0, 1.0)
        eng.run()
        assert log == []
        assert eng.dead_ranks == {0}

    def test_kill_callback_fires(self):
        eng = Engine()
        seen = []
        eng.on_rank_killed = lambda rank, t: seen.append((rank, t))

        def victim():
            eng.sleep(10.0)

        eng.spawn(victim, 3)
        eng.kill_rank_at(3, 0.5)
        eng.run()
        assert seen == [(3, 0.5)]

    def test_deadlock_message_names_parked_ranks_and_dead(self):
        """Satellite: a fault-induced hang must say who is stuck on what.

        Rank 1 parks forever on a labelled parker; rank 0 is killed, so
        the wake rank 1 is waiting for can never come.  The deadlock
        error must keep its legacy first line and additionally name the
        parked rank, its parker label, and the injected deaths.
        """
        eng = Engine()

        def waiter():
            p = eng.make_parker(label="recv(src=0, tag=12)")
            eng.park(p)

        def master():
            eng.sleep(5.0)

        eng.spawn(master, 0)
        eng.spawn(waiter, 1)
        eng.kill_rank_at(0, 0.5)
        with pytest.raises(SimError) as ei:
            eng.run()
        msg = str(ei.value)
        assert msg.startswith("deadlock: ranks [1] blocked")
        assert "rank 1 parked on recv(src=0, tag=12)" in msg
        assert "dead ranks (killed by fault injection): [0]" in msg


# ----------------------------------------------------------------------
# retry_io
# ----------------------------------------------------------------------
class TestRetryIO:
    def _run(self, body):
        eng = Engine()
        out = {}

        def wrapper():
            out["v"] = body(eng)

        eng.spawn(wrapper, 0)
        eng.run()
        return out.get("v")

    def test_retries_then_succeeds(self):
        calls = []

        def body(eng):
            def fn():
                calls.append(eng.now)
                if len(calls) < 3:
                    raise TransientIOError("read", "nr.xsq")
                return b"data"

            from repro.simmpi.faults import FaultReport

            report = FaultReport()
            val = retry_io(eng, fn, attempts=5, report=report, what="t")
            assert report.count("recover:io-retry") == 2
            return val

        assert self._run(body) == b"data"
        assert len(calls) == 3

    def test_budget_exhaustion_reraises(self):
        def body(eng):
            def fn():
                raise TransientIOError("write", "out")

            with pytest.raises(TransientIOError):
                retry_io(eng, fn, attempts=3)
            return "done"

        assert self._run(body) == "done"


# ----------------------------------------------------------------------
# Communicator under faults
# ----------------------------------------------------------------------
class TestCommFaults:
    def test_recv_with_timeout_times_out(self):
        def program(ctx):
            if ctx.rank == 0:
                got = ctx.comm.recv_with_timeout(tag=5, timeout=0.5)
                assert got is TIMEOUT
                assert ctx.engine.now == pytest.approx(0.5)
                return "ok"
            return None

        res = run(2, program)
        assert res.rank_results[0] == "ok"

    def test_recv_with_timeout_delivers_early(self):
        def program(ctx):
            if ctx.rank == 0:
                got = ctx.comm.recv_with_timeout(tag=5, timeout=10.0)
                assert got == "hi"
                assert ctx.engine.now < 1.0
                return "ok"
            ctx.comm.send("hi", dest=0, tag=5)
            return None

        res = run(2, program)
        assert res.rank_results[0] == "ok"

    def test_send_to_killed_rank_is_safe(self):
        """isend to a dead rank must not wedge or wake a corpse."""
        plan = FaultPlan(events=(CrashFault(rank=1, time=0.1),))

        def program(ctx):
            if ctx.rank == 0:
                ctx.engine.sleep(0.5)  # let the kill land
                ctx.comm.isend("for the dead", dest=1, tag=3)
                ctx.engine.sleep(0.1)
                return "survived"
            ctx.engine.sleep(60.0)  # killed long before this elapses
            return "unreachable"

        res = run(2, program, faults=plan)
        assert res.rank_results[0] == "survived"
        assert res.dead_ranks == (1,)

    def test_finite_drops_heal(self):
        """A retrying sender eventually gets a message through."""
        plan = FaultPlan(
            events=(MessageDropFault(source=1, dest=0, tag=7, count=2),)
        )

        def program(ctx):
            if ctx.rank == 0:
                for _ in range(5):
                    got = ctx.comm.recv_with_timeout(tag=7, timeout=0.2)
                    if got is not TIMEOUT:
                        return got
                return None
            for _ in range(5):
                ctx.comm.isend("payload", dest=0, tag=7)
                ctx.engine.sleep(0.2)
            return None

        res = run(2, program, faults=plan)
        assert res.rank_results[0] == "payload"
        assert res.fault_report.count("inject:drop") == 2


# ----------------------------------------------------------------------
# Fault-tolerant pioBLAST (the acceptance scenarios)
# ----------------------------------------------------------------------
def _pio_ft(store, cfg, nprocs, plan=None):
    res = run_pioblast(nprocs, store, cfg, faults=plan)
    return store.read(cfg.output_path), res


def _mpi_ft(store, cfg, nprocs, plan=None):
    mpiformatdb(store, cfg.db_name, cfg.fragments_for(nprocs - 1))
    res = run_mpiblast(nprocs, store, cfg, faults=plan)
    return store.read(cfg.output_path), res


class TestFTPioblast:
    def test_fault_free_ft_matches_serial(self, staged, serial_reference):
        store, cfg = staged
        cfg = ParallelConfig(cost=cfg.cost, fault_tolerance=True)
        out, res = _pio_ft(store, cfg, 5)
        assert out == serial_reference
        assert res.fault_report is not None and res.fault_report.empty
        assert res.dead_ranks == ()

    def test_kill_one_of_eight_mid_search(self, staged, serial_reference):
        """The headline acceptance test: 8 workers, one dies mid-search,
        the run completes with output byte-identical to the fault-free
        (== serial) report."""
        store, cfg = staged
        plan = FaultPlan(seed=11, events=(CrashFault(rank=3, time=0.02),))
        out, res = _pio_ft(store, cfg, 9, plan)
        assert out == serial_reference
        assert res.dead_ranks == (3,)
        rep = res.fault_report
        assert rep.count("inject:crash") == 1
        assert rep.count("detect:worker-dead") == 1
        assert rep.count("recover:") >= 1
        assert not rep.degraded

    def test_same_plan_replays_identically(self, small_db, small_queries):
        from repro.costmodel import CostModel
        from repro.parallel import stage_inputs

        plan = FaultPlan(seed=11, events=(CrashFault(rank=3, time=0.02),))
        runs = []
        for _ in range(2):
            store = FileStore()
            cfg = ParallelConfig(cost=CostModel())
            cfg = stage_inputs(store, small_db, small_queries, config=cfg,
                               title="test nr")
            out, res = _pio_ft(store, cfg, 9, plan)
            runs.append((out, res.makespan, res.fault_report.as_tuple()))
        assert runs[0] == runs[1]

    def test_control_plane_drops_are_survived(self, staged, serial_reference):
        store, cfg = staged
        plan = FaultPlan(
            seed=3,
            events=(
                MessageDropFault(tag=PIO_FT_REQ, skip=3, count=2),
                MessageDropFault(tag=PIO_FT_REPLY, skip=1, count=2),
            ),
        )
        out, res = _pio_ft(store, cfg, 5, plan)
        assert out == serial_reference
        assert res.fault_report.count("inject:drop") == 4
        assert res.dead_ranks == ()

    def test_transient_io_errors_are_retried(self, staged, serial_reference):
        store, cfg = staged
        plan = FaultPlan(
            seed=4,
            events=(TransientIOFault(path_prefix="nr", op="read", count=3),),
        )
        out, res = _pio_ft(store, cfg, 5, plan)
        assert out == serial_reference
        assert res.fault_report.count("inject:ioerr") == 3
        assert res.fault_report.count("recover:io-retry") == 3

    def test_slow_disk_window_only_slows(self, staged, serial_reference):
        store, cfg = staged
        plan = FaultPlan(
            seed=5,
            events=(DiskSlowdownFault(start=0.0, duration=1.0, factor=0.1),),
        )
        out, res = _pio_ft(store, cfg, 5, plan)
        assert out == serial_reference
        assert res.fault_report.count("inject:slowdisk") >= 1

    def test_straggler_is_tolerated(self, staged, serial_reference):
        store, cfg = staged
        plan = FaultPlan(
            seed=6, events=(StragglerFault(rank=1, factor=0.15),)
        )
        out, res = _pio_ft(store, cfg, 5, plan)
        assert out == serial_reference
        assert res.dead_ranks == ()

    def test_revival_after_final_relayout_absorbs_duplicates(
        self, staged, serial_reference
    ):
        """FAULTS.md §8 regression: a straggler slow enough to be
        declared dead whose result arrives *after* the final output
        relayout is revived, but its late result is absorbed as a
        duplicate — the report is not re-grown and the already-written
        output stands.  The factor is tuned so rank 1's one slowed
        search (~0.035 s of work) completes inside the master's linger
        window, after the fragment was re-searched by a healthy peer."""
        store, cfg = staged
        plan = FaultPlan(
            seed=6,
            events=(StragglerFault(rank=1, factor=0.006, start=0.0),),
        )
        out, res = _pio_ft(store, cfg, 5, plan)
        assert out == serial_reference
        rep = res.fault_report
        assert rep.count("detect:worker-dead") == 1
        assert rep.count("recover:revive") == 1
        assert rep.count("recover:dup-result") == 1
        assert res.dead_ranks == ()       # it came back
        assert res.promotions == ()       # nobody usurped the master
        assert not rep.degraded

    def test_all_workers_dead_degrades_gracefully(self, staged):
        """With nobody left the master still terminates, writes what it
        can (headers/footers over nothing) and reports every fragment
        missing."""
        store, cfg = staged
        plan = FaultPlan(
            seed=7,
            events=tuple(CrashFault(rank=r, time=0.02) for r in (1, 2, 3, 4)),
        )
        out, res = _pio_ft(store, cfg, 5, plan)
        rep = res.fault_report
        assert rep.degraded
        assert rep.missing_fragments == [0, 1, 2, 3]
        assert res.dead_ranks == (1, 2, 3, 4)
        assert store.exists(cfg.output_path)


# ----------------------------------------------------------------------
# Fault-tolerant mpiBLAST (serialized output restart)
# ----------------------------------------------------------------------
class TestFTMpiblast:
    def test_fault_free_ft_matches_serial(self, staged, serial_reference):
        store, cfg = staged
        cfg = ParallelConfig(cost=cfg.cost, fault_tolerance=True)
        out, res = _mpi_ft(store, cfg, 5)
        assert out == serial_reference
        assert res.fault_report is not None and res.fault_report.empty

    def test_owner_death_restarts_output(self, staged, serial_reference):
        """A worker that dies after reporting results invalidates its
        cached alignments: the master must detect the dead owner at
        fetch time, have the fragment re-searched, and restart the
        serialized output pass — still byte-identical."""
        store, cfg = staged
        plan = FaultPlan(seed=7, events=(CrashFault(rank=2, time=0.05),))
        out, res = _mpi_ft(store, cfg, 5, plan)
        assert out == serial_reference
        assert res.dead_ranks == (2,)
        rep = res.fault_report
        assert rep.count("detect:worker-dead") == 1
        assert rep.count("recover:restart-output") == 1
        assert rep.count("recover:research") >= 1
        assert not rep.degraded

    def test_same_plan_replays_identically(self, small_db, small_queries):
        from repro.costmodel import CostModel
        from repro.parallel import stage_inputs

        plan = FaultPlan(seed=7, events=(CrashFault(rank=2, time=0.05),))
        runs = []
        for _ in range(2):
            store = FileStore()
            cfg = ParallelConfig(cost=CostModel())
            cfg = stage_inputs(store, small_db, small_queries, config=cfg,
                               title="test nr")
            out, res = _mpi_ft(store, cfg, 5, plan)
            runs.append((out, res.makespan, res.fault_report.as_tuple()))
        assert runs[0] == runs[1]

    def test_all_workers_dead_degrades_gracefully(self, staged):
        store, cfg = staged
        plan = FaultPlan(
            seed=8,
            events=tuple(CrashFault(rank=r, time=0.02) for r in (1, 2, 3, 4)),
        )
        out, res = _mpi_ft(store, cfg, 5, plan)
        rep = res.fault_report
        assert rep.degraded
        assert rep.missing_fragments == [0, 1, 2, 3]
        assert store.exists(cfg.output_path)


# ----------------------------------------------------------------------
# Randomized chaos sweeps (tier 2: `pytest -m chaos` / `make chaos`)
# ----------------------------------------------------------------------
CHAOS_SEEDS = [101, 202, 303]


@pytest.mark.chaos
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
class TestChaosSweep:
    def test_pioblast_random_plan(self, staged, serial_reference, seed):
        store, cfg = staged
        plan = FaultPlan.random(
            seed, 6, droppable_tags=(PIO_FT_REQ, PIO_FT_REPLY)
        )
        out, res = _pio_ft(store, cfg, 6, plan)
        # random() always leaves at least one worker alive, so the run
        # must fully recover.
        assert not res.fault_report.degraded
        assert out == serial_reference

    def test_mpiblast_random_plan(self, staged, serial_reference, seed):
        store, cfg = staged
        plan = FaultPlan.random(
            seed, 6, droppable_tags=(MPI_FT_REQ, MPI_FT_REPLY)
        )
        out, res = _mpi_ft(store, cfg, 6, plan)
        assert not res.fault_report.degraded
        assert out == serial_reference

    def test_replay_reports_are_bitwise_identical(
        self, small_db, small_queries, seed
    ):
        from repro.costmodel import CostModel
        from repro.parallel import stage_inputs

        plan = FaultPlan.random(
            seed, 6, droppable_tags=(PIO_FT_REQ, PIO_FT_REPLY)
        )
        keys = []
        for _ in range(2):
            store = FileStore()
            cfg = ParallelConfig(cost=CostModel())
            cfg = stage_inputs(store, small_db, small_queries, config=cfg,
                               title="test nr")
            _out, res = _pio_ft(store, cfg, 6, plan)
            keys.append((res.makespan, res.fault_report.as_tuple()))
        assert keys[0] == keys[1]
