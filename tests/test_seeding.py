"""Word seeding: index construction, scanning, two-hit logic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blast.alphabet import DNA, PROTEIN
from repro.blast.matrices import blosum62, dna_matrix
from repro.blast.seeding import (
    SeedStats,
    WordIndex,
    one_hit_triggers,
    two_hit_triggers,
)


def make_index(seq: str, threshold: int = 11) -> WordIndex:
    return WordIndex(
        PROTEIN.encode(seq),
        blosum62(),
        word_size=3,
        threshold=threshold,
        nstd=20,
    )


class TestWordIndexProtein:
    def test_identity_word_always_in_neighbourhood(self):
        # Self-score of common words exceeds T=11 for most triples; use
        # a word with a high self-score (WWW = 33).
        idx = make_index("WWWAAA")
        q = PROTEIN.encode("WWW")
        spos, qpos = idx.find_hits(q)
        assert (qpos == 0).any()

    def test_low_selfscore_word_excluded_at_high_threshold(self):
        # AAA self-score is 12; with T=13 the identity word is excluded.
        idx = make_index("AAA", threshold=13)
        spos, qpos = idx.find_hits(PROTEIN.encode("AAA"))
        assert len(spos) == 0

    def test_neighbourhood_matches_bruteforce(self):
        seq = "MKVLAWYQ"
        idx = make_index(seq)
        m = blosum62()[:20, :20]
        q = PROTEIN.encode(seq)
        # brute force neighbourhood of position 2 (VLA)
        a, b, c = int(q[2]), int(q[3]), int(q[4])
        scores = (
            m[a][:, None, None] + m[b][None, :, None] + m[c][None, None, :]
        )
        expected = int((scores >= 11).sum())
        count = 0
        for code in range(8000):
            s, e = idx.indptr[code], idx.indptr[code + 1]
            count += int((idx.data[s:e] == 2).sum())
        assert count == expected

    def test_wildcard_query_word_skipped(self):
        idx = make_index("MKXLA")  # words containing X are skipped
        # positions 0,1,2 contain X; no position 0..2 indexed
        present = set(idx.data.tolist())
        assert 0 not in present and 1 not in present and 2 not in present

    def test_short_query_has_empty_index(self):
        idx = make_index("MK")
        assert idx.total_entries == 0

    def test_subject_wildcards_not_scanned(self):
        idx = make_index("MKVLAW")
        s = PROTEIN.encode("MKXVLA")  # X at 2 invalidates words at 0,1,2
        pos, codes = idx.subject_codes(s)
        assert 0 not in pos and 1 not in pos and 2 not in pos

    def test_hits_sorted_by_subject_position(self):
        idx = make_index("MKVLAWMKVLAW")
        s = PROTEIN.encode("MKVLAWMKVLAW")
        spos, qpos = idx.find_hits(s)
        assert (np.diff(spos) >= 0).all()

    def test_stats_counted(self):
        idx = make_index("MKVLAW")
        stats = SeedStats()
        idx.find_hits(PROTEIN.encode("MKVLAWMKVLAW"), stats)
        assert stats.positions_scanned == 12
        assert stats.word_hits > 0


class TestWordIndexDna:
    def test_exact_word_match_only(self):
        q = DNA.encode("ACGTACGTACGTACG")
        idx = WordIndex(q, dna_matrix(), word_size=11, threshold=0, nstd=4,
                        exact_only=True)
        spos, qpos = idx.find_hits(q)
        # every position matches itself on the diagonal
        assert all((qp - sp) % 4 == 0 for sp, qp in zip(spos, qpos))
        diag0 = [(sp, qp) for sp, qp in zip(spos, qpos) if sp == qp]
        assert len(diag0) == len(q) - 11 + 1

    def test_mutation_breaks_words(self):
        q = DNA.encode("ACGTACGTACGTACGTT")
        idx = WordIndex(q, dna_matrix(), word_size=11, threshold=0, nstd=4,
                        exact_only=True)
        s = DNA.encode("ACGTACGTACGAACGTT")  # mutation at pos 11
        spos, _ = idx.find_hits(s)
        # words overlapping position 11 cannot match exactly
        assert len(spos) < len(q) - 10


def trigger_pairs(trig):
    """(qpos, spos) ndarray pair -> list of (qpos, spos) tuples."""
    tq, ts = trig
    return list(zip(tq.tolist(), ts.tolist()))


class TestTwoHit:
    def test_pair_within_window_triggers(self):
        spos = np.array([0, 10])
        qpos = np.array([5, 15])  # same diagonal 5
        trig = two_hit_triggers(spos, qpos, window=40, word_size=3)
        assert trigger_pairs(trig) == [(15, 10)]

    def test_overlapping_pair_does_not_trigger(self):
        spos = np.array([0, 2])
        qpos = np.array([5, 7])  # distance 2 < word_size
        trig = two_hit_triggers(spos, qpos, window=40, word_size=3)
        assert trigger_pairs(trig) == []

    def test_beyond_window_does_not_trigger(self):
        spos = np.array([0, 100])
        qpos = np.array([5, 105])
        trig = two_hit_triggers(spos, qpos, window=40, word_size=3)
        assert trigger_pairs(trig) == []

    def test_different_diagonals_do_not_pair(self):
        spos = np.array([0, 10])
        qpos = np.array([5, 16])  # diagonals 5 and 6
        trig = two_hit_triggers(spos, qpos, window=40, word_size=3)
        assert trigger_pairs(trig) == []

    def test_dense_identity_run_triggers(self):
        """Consecutive overlapping hits (distance 1) must still produce
        triggers from non-adjacent pairs — the self-hit regression."""
        n = 30
        spos = np.arange(n)
        qpos = np.arange(n)
        tq, _ts = two_hit_triggers(spos, qpos, window=40, word_size=3)
        # every position >= word_size has an earlier hit at distance in
        # [3, 40]
        assert len(tq) == n - 3

    def test_empty_input(self):
        trig = two_hit_triggers(np.array([]), np.array([]), window=40,
                                word_size=3)
        assert trigger_pairs(trig) == []

    def test_one_hit_mode_triggers_everything(self):
        spos = np.array([3, 1])
        qpos = np.array([7, 2])
        trig = one_hit_triggers(spos, qpos)
        assert sorted(trigger_pairs(trig)) == [(2, 1), (7, 3)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 300), st.integers(0, 300)),
            min_size=0,
            max_size=80,
            unique=True,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_bruteforce(self, pairs):
        if pairs:
            spos = np.array([p[0] for p in pairs])
            qpos = np.array([p[1] for p in pairs])
        else:
            spos = np.array([], dtype=np.int64)
            qpos = np.array([], dtype=np.int64)
        trig = set(
            trigger_pairs(
                two_hit_triggers(spos, qpos, window=40, word_size=3)
            )
        )
        expected = set()
        for sp, qp in pairs:
            d = qp - sp
            for sp2, qp2 in pairs:
                if qp2 - sp2 == d and 3 <= sp - sp2 <= 40:
                    expected.add((qp, sp))
                    break
        assert trig == expected
