"""The reproduction's central correctness claim (paper §3):

    "Given the same input query and database, pioBLAST and mpiBLAST
     generate the same output."

Every driver — serial reference, mpiBLAST, pioBLAST (all ablation
variants, both §5 extensions), query segmentation — must produce
byte-identical report files, across process counts, fragment counts,
and platforms.
"""

from dataclasses import replace

import pytest

from repro.parallel import (
    mpiformatdb,
    run_mpiblast,
    run_pioblast,
    run_queryseg,
)
from repro.platforms import NCSU_BLADE, ORNL_ALTIX


def fresh(staged_factory):
    return staged_factory


@pytest.fixture()
def make_staged(small_db, small_queries):
    """Factory producing a fresh staged store per driver run."""
    from repro.costmodel import CostModel
    from repro.parallel import ParallelConfig, stage_inputs
    from repro.simmpi import FileStore

    def _make(**cfg_kwargs):
        store = FileStore()
        cfg = ParallelConfig(cost=CostModel(), **cfg_kwargs)
        cfg = stage_inputs(store, small_db, small_queries, config=cfg,
                           title="test nr")
        return store, cfg

    return _make


class TestMpiblastEquivalence:
    @pytest.mark.parametrize("nprocs", [2, 3, 5, 9])
    def test_matches_serial_across_process_counts(
        self, make_staged, serial_reference, nprocs
    ):
        store, cfg = make_staged()
        mpiformatdb(store, cfg.db_name, nprocs - 1)
        run_mpiblast(nprocs, store, cfg, ORNL_ALTIX)
        assert store.read_all(cfg.output_path) == serial_reference

    @pytest.mark.parametrize("nfrag", [2, 7, 12])
    def test_matches_serial_across_fragment_counts(
        self, make_staged, serial_reference, nfrag
    ):
        store, cfg = make_staged(num_fragments=nfrag)
        mpiformatdb(store, cfg.db_name, nfrag)
        run_mpiblast(5, store, cfg, ORNL_ALTIX)
        assert store.read_all(cfg.output_path) == serial_reference

    def test_matches_on_nfs_platform(self, make_staged, serial_reference):
        store, cfg = make_staged()
        mpiformatdb(store, cfg.db_name, 3)
        run_mpiblast(4, store, cfg, NCSU_BLADE)
        assert store.read_all(cfg.output_path) == serial_reference


class TestPioblastEquivalence:
    @pytest.mark.parametrize("nprocs", [2, 3, 5, 9])
    def test_matches_serial_across_process_counts(
        self, make_staged, serial_reference, nprocs
    ):
        store, cfg = make_staged()
        run_pioblast(nprocs, store, cfg, ORNL_ALTIX)
        assert store.read_all(cfg.output_path) == serial_reference

    def test_matches_with_more_fragments_than_workers(
        self, make_staged, serial_reference
    ):
        store, cfg = make_staged(num_fragments=11)
        run_pioblast(4, store, cfg, ORNL_ALTIX)
        assert store.read_all(cfg.output_path) == serial_reference

    def test_matches_without_collective_output(
        self, make_staged, serial_reference
    ):
        store, cfg = make_staged(collective_output=False)
        run_pioblast(5, store, cfg, ORNL_ALTIX)
        assert store.read_all(cfg.output_path) == serial_reference

    def test_matches_without_result_caching(
        self, make_staged, serial_reference
    ):
        store, cfg = make_staged(result_caching=False)
        run_pioblast(5, store, cfg, ORNL_ALTIX)
        assert store.read_all(cfg.output_path) == serial_reference

    def test_matches_without_parallel_input(
        self, make_staged, serial_reference
    ):
        store, cfg = make_staged(parallel_input=False)
        run_pioblast(5, store, cfg, ORNL_ALTIX)
        assert store.read_all(cfg.output_path) == serial_reference

    def test_matches_with_early_score_pruning(
        self, make_staged, serial_reference
    ):
        store, cfg = make_staged(early_score_pruning=True)
        run_pioblast(5, store, cfg, ORNL_ALTIX)
        assert store.read_all(cfg.output_path) == serial_reference

    def test_matches_with_adaptive_granularity(
        self, make_staged, serial_reference
    ):
        store, cfg = make_staged(adaptive_granularity=True)
        run_pioblast(5, store, cfg, ORNL_ALTIX)
        assert store.read_all(cfg.output_path) == serial_reference

    def test_matches_on_nfs_platform(self, make_staged, serial_reference):
        store, cfg = make_staged()
        run_pioblast(4, store, cfg, NCSU_BLADE)
        assert store.read_all(cfg.output_path) == serial_reference

    def test_all_flags_off_is_still_correct(
        self, make_staged, serial_reference
    ):
        store, cfg = make_staged(
            parallel_input=False,
            result_caching=False,
            collective_output=False,
        )
        run_pioblast(4, store, cfg, ORNL_ALTIX)
        assert store.read_all(cfg.output_path) == serial_reference


class TestQuerysegEquivalence:
    @pytest.mark.parametrize("nprocs", [2, 4, 7])
    def test_matches_serial(self, make_staged, serial_reference, nprocs):
        store, cfg = make_staged()
        run_queryseg(nprocs, store, cfg, ORNL_ALTIX)
        assert store.read_all(cfg.output_path) == serial_reference


class TestCrossDriver:
    def test_mpi_equals_pio_directly(self, make_staged):
        s1, c1 = make_staged()
        mpiformatdb(s1, c1.db_name, 4)
        run_mpiblast(5, s1, c1, ORNL_ALTIX)
        s2, c2 = make_staged()
        run_pioblast(5, s2, c2, ORNL_ALTIX)
        assert s1.read_all(c1.output_path) == s2.read_all(c2.output_path)

    def test_determinism_of_a_driver(self, make_staged):
        outs = []
        for _ in range(2):
            store, cfg = make_staged()
            run_pioblast(4, store, cfg, ORNL_ALTIX)
            outs.append(store.read_all(cfg.output_path))
        assert outs[0] == outs[1]

    def test_minimum_process_counts_enforced(self, make_staged):
        store, cfg = make_staged()
        with pytest.raises(ValueError):
            run_pioblast(1, store, cfg)
        with pytest.raises(ValueError):
            run_mpiblast(1, store, cfg)
        with pytest.raises(ValueError):
            run_queryseg(1, store, cfg)
