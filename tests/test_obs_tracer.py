"""The event tracer: zero-impact when disabled, deterministic when on."""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentWorkload, run_program_raw
from repro.obs import (
    EV_FAULT,
    EV_PHASE,
    EV_RECV,
    EV_SEND,
    EV_WAIT,
    SPAN_KINDS,
    Event,
    Tracer,
)
from repro.simmpi import FaultPlan
from repro.workloads import SynthSpec

SMALL = ExperimentWorkload(
    db_spec=SynthSpec(
        num_sequences=90,
        mean_length=140,
        family_fraction=0.6,
        family_size=5,
        seed=7,
    ),
    query_bytes=1800,
)


class TestTracerUnit:
    def test_span_and_instant(self):
        t = Tracer()
        t.span(EV_WAIT, 0, 1.0, 2.5, "sleep")
        t.instant(EV_SEND, 1, 3.0, "send", 2, 5, 100)
        assert len(t) == 2
        sp, inst = t.events
        assert sp.is_span and sp.duration == pytest.approx(1.5)
        assert not inst.is_span and inst.t0 == inst.t1 == 3.0
        assert inst.args == (2, 5, 100)

    def test_filters(self):
        t = Tracer()
        t.span(EV_WAIT, 0, 0.0, 1.0, "sleep")
        t.instant(EV_SEND, 1, 1.0, "send")
        assert [e.kind for e in t.by_kind(EV_WAIT)] == [EV_WAIT]
        assert [e.rank for e in t.for_rank(1)] == [1]
        assert len(t.spans()) == 1

    def test_as_tuple_rounds(self):
        e = Event(EV_WAIT, 0, 0.1234567894, 1.0, "x", (1,))
        assert e.as_tuple()[0] == 0.123456789


class TestDisabledTracing:
    """Tracing off must change nothing and cost (almost) nothing."""

    def test_untraced_run_has_no_events_but_metrics(self):
        _b, result, _store, _cfg = run_program_raw("pioblast", 4, SMALL)
        assert result.events is None
        assert result.metrics is not None
        assert result.metrics["totals"]["msgs_sent"] > 0

    def test_traced_and_untraced_runs_identical(self):
        _b1, r1, s1, cfg = run_program_raw("pioblast", 4, SMALL)
        _b2, r2, s2, _ = run_program_raw(
            "pioblast", 4, SMALL, tracer=Tracer()
        )
        assert r1.makespan == r2.makespan
        assert r1.phase_times == r2.phase_times
        # Byte-identical report output.
        assert s1.read_all(cfg.output_path) == s2.read_all(cfg.output_path)
        assert r2.events, "traced run must produce events"


class TestDeterminism:
    def test_same_seed_same_event_stream(self):
        streams = []
        for _ in range(2):
            t = Tracer()
            run_program_raw("pioblast", 4, SMALL, tracer=t)
            streams.append(t.as_tuples())
        assert streams[0] == streams[1]

    def test_same_fault_plan_same_event_stream(self):
        plan = FaultPlan.parse("seed=3,kill=2@0.05,slowdisk=0.3x0.5@0.1")
        streams = []
        for _ in range(2):
            t = Tracer()
            run_program_raw("pioblast", 4, SMALL, tracer=t, faults=plan)
            streams.append(t.as_tuples())
        assert streams[0] == streams[1]
        kinds = {s[3] for s in streams[0]}
        assert EV_FAULT in kinds, "fault events must appear in the trace"


class TestEventStream:
    @pytest.fixture(scope="class")
    def traced(self):
        t = Tracer()
        _b, result, _store, _cfg = run_program_raw(
            "pioblast", 4, SMALL, tracer=t
        )
        return t, result

    def test_expected_kinds_present(self, traced):
        t, _ = traced
        kinds = {e.kind for e in t.events}
        for k in (EV_WAIT, EV_PHASE, EV_SEND, EV_RECV, "io", "comm.coll"):
            assert k in kinds, f"missing event kind {k}"

    def test_spans_well_formed(self, traced):
        t, result = traced
        for e in t.events:
            assert e.t1 >= e.t0 >= 0.0
            assert e.t1 <= result.makespan + 1e-9
            if e.kind in SPAN_KINDS:
                assert e.rank >= 0, "spans always belong to a rank"

    def test_wait_spans_tile_each_rank(self, traced):
        """Virtual time only advances while parked: per rank the wait
        spans are contiguous from 0 to the rank's last park."""
        t, _ = traced
        for rank in range(4):
            spans = [e for e in t.for_rank(rank) if e.kind == EV_WAIT]
            spans.sort(key=lambda e: e.t0)
            assert spans and spans[0].t0 == pytest.approx(0.0, abs=1e-9)
            for a, b in zip(spans, spans[1:]):
                assert b.t0 == pytest.approx(a.t1, abs=1e-9)

    def test_send_recv_message_ids_match(self, traced):
        t, _ = traced
        sends = {e.args[3] for e in t.by_kind(EV_SEND) if not e.args[4]}
        recvs = {e.args[3] for e in t.by_kind(EV_RECV)}
        assert recvs, "no receives traced"
        assert recvs <= sends, "every received mid must have been sent"

    def test_wait_metric_matches_spans(self, traced):
        t, result = traced
        for rank in range(4):
            span_sum = sum(
                e.duration for e in t.for_rank(rank) if e.kind == EV_WAIT
            )
            counted = result.metrics["per_rank"][rank]["counters"].get(
                "wait_s", 0.0
            )
            assert counted == pytest.approx(span_sum, rel=1e-9)
