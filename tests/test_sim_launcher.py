"""Launcher, contexts, phase recording, platform knobs."""

import pytest

from repro.simmpi import PlatformSpec, run
from repro.simmpi.trace import PhaseRecorder, Timeline


class TestRun:
    def test_rank_results_collected(self):
        res = run(4, lambda ctx: ctx.rank * 2, PlatformSpec())
        assert res.rank_results == [0, 2, 4, 6]

    def test_nprocs_validated(self):
        with pytest.raises(ValueError):
            run(0, lambda ctx: None)

    def test_args_passed_per_rank_copy(self):
        def prog(ctx):
            ctx.args["mine"] = ctx.rank  # mutating must not leak
            return ctx.args["shared"]

        res = run(3, prog, args={"shared": 7})
        assert res.rank_results == [7, 7, 7]

    def test_stats_surface(self):
        def prog(ctx):
            ctx.comm.bcast("x" if ctx.rank == 0 else None, root=0)
            ctx.fs.write(f"f{ctx.rank}", 0, b"abc")

        res = run(3, prog)
        assert res.messages_sent > 0
        assert res.fs_write_ops == 3
        assert res.nprocs == 3


class TestCompute:
    def test_cpu_speed_scales(self):
        slow = run(1, lambda ctx: ctx.compute(10.0),
                   PlatformSpec(cpu_speed=1.0))
        fast = run(1, lambda ctx: ctx.compute(10.0),
                   PlatformSpec(cpu_speed=2.0))
        assert slow.makespan == pytest.approx(10.0)
        assert fast.makespan == pytest.approx(5.0)

    def test_heterogeneous_ranks(self):
        spec = PlatformSpec(cpu_speed_per_rank=(1.0, 0.5))

        def prog(ctx):
            ctx.compute(10.0)
            return ctx.now

        res = run(4, prog, spec)
        assert res.rank_results == [10.0, 20.0, 10.0, 20.0]

    def test_negative_compute_rejected(self):
        def prog(ctx):
            with pytest.raises(ValueError):
                ctx.compute(-1)

        run(1, prog)

    def test_local_disks_only_when_enabled(self):
        def prog(ctx):
            return ctx.local_disk is not None

        assert run(2, prog, PlatformSpec(local_disks=False)).rank_results == [
            False, False
        ]
        assert run(2, prog, PlatformSpec(local_disks=True)).rank_results == [
            True, True
        ]


class TestPhases:
    def test_phase_times_recorded_per_rank(self):
        def prog(ctx):
            with ctx.phase("alpha"):
                ctx.compute(float(ctx.rank + 1))
            with ctx.phase("beta"):
                ctx.compute(0.5)

        res = run(3, prog)
        assert res.phase_times[2]["alpha"] == pytest.approx(3.0)
        assert res.phase_times[0]["beta"] == pytest.approx(0.5)
        assert res.phase_max("alpha") == pytest.approx(3.0)

    def test_nested_phases_attribute_to_innermost(self):
        def prog(ctx):
            with ctx.phase("outer"):
                ctx.compute(1.0)
                with ctx.phase("inner"):
                    ctx.compute(2.0)
                ctx.compute(0.5)

        res = run(1, prog)
        assert res.phase_times[0]["inner"] == pytest.approx(2.0)
        assert res.phase_times[0]["outer"] == pytest.approx(1.5)

    def test_repeated_phase_accumulates(self):
        def prog(ctx):
            for _ in range(3):
                with ctx.phase("work"):
                    ctx.compute(1.0)

        res = run(1, prog)
        assert res.phase_times[0]["work"] == pytest.approx(3.0)

    def test_timeline_spans(self):
        def prog(ctx):
            with ctx.phase("w"):
                ctx.compute(1.0)

        res = run(2, prog)
        spans = res.timeline.for_phase("w")
        assert len(spans) == 2
        assert all(s.duration == pytest.approx(1.0) for s in spans)
        assert len(res.timeline.for_rank(1)) == 1

    def test_phase_total_helper(self):
        def prog(ctx):
            with ctx.phase("a"):
                ctx.compute(1.0)
            with ctx.phase("b"):
                ctx.compute(2.0)

        res = run(2, prog)
        assert res.phase_total() == pytest.approx(3.0)
        assert res.phase_total(["a"]) == pytest.approx(1.0)


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        def prog(ctx):
            ctx.comm.bcast(b"z" * 5000 if ctx.rank == 0 else None, root=0)
            with ctx.phase("s"):
                ctx.compute(0.1 * (ctx.rank + 1))
            ctx.fs.write(f"o{ctx.rank}", 0, bytes([ctx.rank]))
            ctx.comm.barrier()
            return ctx.now

        r1 = run(6, prog)
        r2 = run(6, prog)
        assert r1.makespan == r2.makespan
        assert r1.rank_results == r2.rank_results
        assert r1.phase_times == r2.phase_times
