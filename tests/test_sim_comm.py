"""Communicator: point-to-point semantics and collectives."""

import operator

import pytest

from repro.simmpi import NetworkModel, PlatformSpec, run
from repro.simmpi.comm import ANY_SOURCE, ANY_TAG, Status
from repro.simmpi.engine import SimError

FAST = PlatformSpec(network=NetworkModel(latency=1e-6, bandwidth=1e9,
                                         overhead=1e-7))


def launch(n, fn):
    return run(n, fn, FAST)


class TestPointToPoint:
    def test_send_recv_payload(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.comm.send({"x": 1}, dest=1, tag=5)
            elif ctx.rank == 1:
                st = Status()
                got = ctx.comm.recv(source=0, tag=5, status=st)
                assert got == {"x": 1}
                assert st.source == 0 and st.tag == 5

        launch(2, prog)

    def test_fifo_per_source_tag(self):
        def prog(ctx):
            if ctx.rank == 0:
                for i in range(5):
                    ctx.comm.send(i, dest=1, tag=1)
            else:
                got = [ctx.comm.recv(source=0, tag=1) for _ in range(5)]
                assert got == list(range(5))

        launch(2, prog)

    def test_tag_selectivity(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.comm.send("a", dest=1, tag=1)
                ctx.comm.send("b", dest=1, tag=2)
            else:
                assert ctx.comm.recv(source=0, tag=2) == "b"
                assert ctx.comm.recv(source=0, tag=1) == "a"

        launch(2, prog)

    def test_any_source_any_tag(self):
        def prog(ctx):
            if ctx.rank in (1, 2):
                ctx.comm.send(ctx.rank, dest=0, tag=ctx.rank)
            elif ctx.rank == 0:
                seen = set()
                for _ in range(2):
                    st = Status()
                    v = ctx.comm.recv(source=ANY_SOURCE, tag=ANY_TAG,
                                      status=st)
                    assert v == st.source == st.tag
                    seen.add(v)
                assert seen == {1, 2}

        launch(3, prog)

    def test_recv_before_send(self):
        def prog(ctx):
            if ctx.rank == 0:
                got = ctx.comm.recv(source=1, tag=0)
                assert got == "late"
            else:
                ctx.engine.sleep(1.0)
                ctx.comm.send("late", dest=0, tag=0)

        launch(2, prog)

    def test_isend_irecv(self):
        def prog(ctx):
            if ctx.rank == 0:
                req = ctx.comm.isend("x", dest=1, tag=0)
                req.wait()
            else:
                req = ctx.comm.irecv(source=0, tag=0)
                assert req.wait() == "x"

        launch(2, prog)

    def test_probe_leaves_message(self):
        def prog(ctx):
            if ctx.rank == 0:
                ctx.comm.send("peek", dest=1, tag=9)
            else:
                st = ctx.comm.probe(source=0, tag=9)
                assert st.tag == 9
                assert ctx.comm.recv(source=0, tag=9) == "peek"

        launch(2, prog)

    def test_large_message_takes_longer(self):
        times = {}

        def prog_for(size_key, nbytes):
            def prog(ctx):
                if ctx.rank == 0:
                    ctx.comm.send(b"x" * nbytes, dest=1, tag=0)
                else:
                    ctx.comm.recv(source=0, tag=0)
                    times[size_key] = ctx.now

            return prog

        launch(2, prog_for("small", 100))
        launch(2, prog_for("big", 10_000_000))
        assert times["big"] > times["small"]

    def test_rendezvous_blocks_sender(self):
        sender_done = {}

        def prog(ctx):
            if ctx.rank == 0:
                ctx.comm.send(b"x" * 1_000_000, dest=1, tag=0)  # > eager
                sender_done["t"] = ctx.now
            else:
                ctx.comm.recv(source=0, tag=0)

        launch(2, prog)
        net = FAST.network
        assert sender_done["t"] >= net.delivery_time(1_000_000)

    def test_negative_user_tag_rejected(self):
        def prog(ctx):
            if ctx.rank == 0:
                with pytest.raises(SimError):
                    ctx.comm.send("x", dest=1, tag=-3)
                ctx.comm.send("done", dest=1, tag=0)
            else:
                ctx.comm.recv(source=0, tag=0)

        launch(2, prog)

    def test_bad_dest_rejected(self):
        def prog(ctx):
            with pytest.raises(SimError):
                ctx.comm.send("x", dest=99, tag=0)

        launch(1, prog)


class TestCollectives:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13])
    def test_bcast_all_sizes(self, n):
        def prog(ctx):
            data = {"v": 42} if ctx.rank == 0 else None
            out = ctx.comm.bcast(data, root=0)
            assert out == {"v": 42}

        launch(n, prog)

    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_bcast_nonzero_root(self, root):
        def prog(ctx):
            data = "payload" if ctx.rank == root else None
            assert ctx.comm.bcast(data, root=root) == "payload"

        launch(5, prog)

    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_gather(self, n):
        def prog(ctx):
            out = ctx.comm.gather(ctx.rank * 10, root=0)
            if ctx.rank == 0:
                assert out == [r * 10 for r in range(ctx.size)]
            else:
                assert out is None

        launch(n, prog)

    def test_gatherv(self):
        def prog(ctx):
            out = ctx.comm.gatherv([ctx.rank] * ctx.rank, root=0)
            if ctx.rank == 0:
                assert out == [[r] * r for r in range(ctx.size)]

        launch(5, prog)

    def test_scatter(self):
        def prog(ctx):
            objs = [f"item{r}" for r in range(ctx.size)] if ctx.rank == 0 else None
            assert ctx.comm.scatter(objs, root=0) == f"item{ctx.rank}"

        launch(6, prog)

    def test_allgather(self):
        def prog(ctx):
            out = ctx.comm.allgather(ctx.rank**2)
            assert out == [r**2 for r in range(ctx.size)]

        launch(5, prog)

    def test_reduce_and_allreduce(self):
        def prog(ctx):
            s = ctx.comm.reduce(ctx.rank + 1, op=operator.add, root=0)
            if ctx.rank == 0:
                assert s == sum(range(1, ctx.size + 1))
            total = ctx.comm.allreduce(ctx.rank + 1, op=operator.add)
            assert total == sum(range(1, ctx.size + 1))

        launch(6, prog)

    def test_alltoall(self):
        def prog(ctx):
            objs = [(ctx.rank, r) for r in range(ctx.size)]
            out = ctx.comm.alltoall(objs)
            assert out == [(r, ctx.rank) for r in range(ctx.size)]

        launch(4, prog)

    def test_barrier_synchronizes(self):
        def prog(ctx):
            ctx.engine.sleep(float(ctx.rank))
            ctx.comm.barrier()
            assert ctx.now >= ctx.size - 1

        launch(5, prog)

    def test_mixed_collectives_in_order(self):
        def prog(ctx):
            a = ctx.comm.bcast(ctx.rank if ctx.rank == 0 else None, root=0)
            b = ctx.comm.gather(a + ctx.rank, root=0)
            ctx.comm.barrier()
            c = ctx.comm.allgather(ctx.rank)
            assert c == list(range(ctx.size))
            if ctx.rank == 0:
                assert b == list(range(ctx.size))

        launch(7, prog)

    def test_collectives_deterministic_makespan(self):
        def prog(ctx):
            ctx.comm.bcast(b"x" * 10000 if ctx.rank == 0 else None, root=0)
            ctx.comm.barrier()

        r1 = launch(8, prog)
        r2 = launch(8, prog)
        assert r1.makespan == r2.makespan > 0
