"""The online query service: arrivals, admission, end-to-end identity.

The service-level contract under test: whatever the arrival order, the
wave composition, or which workers die, every admitted query is
answered exactly once and the concatenated per-query reports are
byte-identical to the serial oracle's.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.obs import EV_QUERY, Tracer
from repro.parallel import run_pioblast
from repro.service import (
    AdmissionScheduler,
    QueryJob,
    ServiceConfig,
    poisson_arrivals,
    run_service,
    trace_arrivals,
)
from repro.simmpi import CrashFault, FaultPlan, ProcessFailure


# ----------------------------------------------------------------------
# arrival generators
# ----------------------------------------------------------------------
class TestArrivals:
    def test_poisson_deterministic(self, small_queries):
        a = poisson_arrivals(small_queries, rate=2.0, seed=5)
        b = poisson_arrivals(small_queries, rate=2.0, seed=5)
        assert a == b
        c = poisson_arrivals(small_queries, rate=2.0, seed=6)
        assert a != c

    def test_poisson_shape(self, small_queries):
        jobs = poisson_arrivals(small_queries, rate=2.0, seed=1)
        assert [j.qid for j in jobs] == list(range(len(small_queries)))
        times = [j.arrival for j in jobs]
        assert times == sorted(times) and times[0] > 0.0
        assert all(j.lane is None for j in jobs)

    def test_poisson_start_offset(self, small_queries):
        jobs = poisson_arrivals(small_queries, rate=2.0, seed=1, start=10.0)
        assert jobs[0].arrival > 10.0

    def test_poisson_bad_rate(self, small_queries):
        with pytest.raises(ValueError, match="rate"):
            poisson_arrivals(small_queries, rate=0.0)

    def test_job_validation(self, small_queries):
        rec = small_queries[0]
        with pytest.raises(ValueError, match="arrival"):
            QueryJob(qid=0, arrival=-1.0, record=rec)
        with pytest.raises(ValueError, match="lane"):
            QueryJob(qid=0, arrival=0.0, record=rec, lane="express")
        job = QueryJob(qid=0, arrival=0.0, record=rec, lane="scan")
        assert job.payload_nbytes() > len(rec.sequence)

    def test_trace_roundtrip(self, small_queries):
        text = (
            "# a comment\n"
            "0.5 1\n"
            "\n"
            "1.25 0 interactive  # pinned lane\n"
            "2.0 3 scan\n"
        )
        jobs = trace_arrivals(text, small_queries)
        assert [(j.arrival, j.qid, j.lane) for j in jobs] == [
            (0.5, 1, None), (1.25, 0, "interactive"), (2.0, 3, "scan"),
        ]
        assert jobs[1].record is small_queries[0]

    @pytest.mark.parametrize(
        "line, err",
        [
            ("0.5", "expected"),
            ("0.5 1 interactive extra", "expected"),
            ("zero 1", "bad arrival"),
            ("0.5 one", "bad arrival"),
            ("-0.5 1", "negative arrival"),
            ("0.5 99", "out of range"),
            ("0.5 1 express", "unknown lane"),
        ],
    )
    def test_trace_errors(self, small_queries, line, err):
        with pytest.raises(ValueError, match=err) as ei:
            trace_arrivals(f"0.1 0\n{line}\n", small_queries)
        assert "line 2" in str(ei.value)

    def test_trace_repeated_index(self, small_queries):
        with pytest.raises(ValueError, match="repeated"):
            trace_arrivals("0.1 2\n0.2 2\n", small_queries)


# ----------------------------------------------------------------------
# admission scheduler
# ----------------------------------------------------------------------
def _job(qid: int, rec, lane=None) -> QueryJob:
    return QueryJob(qid=qid, arrival=0.0, record=rec, lane=lane)


class TestScheduler:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_wave"):
            ServiceConfig(max_wave=0)
        with pytest.raises(ValueError, match="admission_delay"):
            ServiceConfig(admission_delay=-0.1)
        with pytest.raises(ValueError, match="max_scan_defer"):
            ServiceConfig(max_scan_defer=0)

    def test_lane_classification(self, small_queries):
        cfg = ServiceConfig(interactive_max_len=len(
            small_queries[0].sequence
        ))
        assert cfg.lane_for(small_queries[0]) == "interactive"
        long_recs = [
            r for r in small_queries
            if len(r.sequence) > cfg.interactive_max_len
        ]
        assert all(cfg.lane_for(r) == "scan" for r in long_recs)

    def test_wave_fills_at_max_wave(self, small_queries):
        s = AdmissionScheduler(ServiceConfig(max_wave=3, admission_delay=9.0))
        for i in range(3):
            s.enqueue(_job(i, small_queries[0], "scan"), now=0.0)
        assert s.wave_ready(0.0)
        wave = s.next_wave(0.0)
        assert [q.job.qid for q in wave] == [0, 1, 2] and s.pending == 0

    def test_wave_departs_at_deadline(self, small_queries):
        s = AdmissionScheduler(ServiceConfig(max_wave=8, admission_delay=0.5))
        s.enqueue(_job(0, small_queries[0], "scan"), now=1.0)
        assert not s.wave_ready(1.0)
        assert s.next_wave(1.2) == []
        assert s.next_deadline() == pytest.approx(1.5)
        assert s.wave_ready(1.5)
        assert [q.job.qid for q in s.next_wave(1.5)] == [0]

    def test_priority_preempts_scans(self, small_queries):
        s = AdmissionScheduler(ServiceConfig(max_wave=2, admission_delay=0.0))
        rec = small_queries[0]
        s.enqueue(_job(0, rec, "scan"), now=0.0)
        s.enqueue(_job(1, rec, "scan"), now=0.1)
        s.enqueue(_job(2, rec, "interactive"), now=0.2)
        wave = s.next_wave(1.0)
        # The later interactive query rides the first wave anyway.
        assert [q.job.qid for q in wave] == [2, 0]

    def test_fifo_without_priority(self, small_queries):
        s = AdmissionScheduler(
            ServiceConfig(max_wave=2, admission_delay=0.0, priority=False)
        )
        rec = small_queries[0]
        s.enqueue(_job(0, rec, "scan"), now=0.0)
        s.enqueue(_job(1, rec, "interactive"), now=0.1)
        s.enqueue(_job(2, rec, "interactive"), now=0.2)
        assert [q.job.qid for q in s.next_wave(1.0)] == [0, 1]
        assert [q.job.qid for q in s.next_wave(1.0)] == [2]

    def test_scan_starvation_bound(self, small_queries):
        """One scan vs an endless interactive stream: the scan departs
        after at most ``max_scan_defer`` bypassing waves."""
        defer = 3
        s = AdmissionScheduler(
            ServiceConfig(max_wave=1, admission_delay=0.0,
                          max_scan_defer=defer)
        )
        rec = small_queries[0]
        s.enqueue(_job(0, rec, "scan"), now=0.0)
        waves = []
        for i in range(1, 10):
            s.enqueue(_job(i, rec, "interactive"), now=float(i))
            waves.append([q.job.qid for q in s.next_wave(100.0)])
            if 0 in waves[-1]:
                break
        # Bypassed by `defer` waves, forced into wave defer+1.
        assert [0] in waves and waves.index([0]) == defer
        assert s.max_deferred_seen == defer


# ----------------------------------------------------------------------
# end-to-end service runs
# ----------------------------------------------------------------------
SERVICE_CFG = ServiceConfig(max_wave=3, admission_delay=0.2)


class TestServiceEndToEnd:
    def test_validation(self, staged, small_queries):
        store, cfg = staged
        jobs = poisson_arrivals(small_queries, rate=2.0, seed=1)
        with pytest.raises(ValueError, match="worker"):
            run_service(1, store, cfg, jobs)
        with pytest.raises(ValueError, match="QueryJob"):
            run_service(4, store, cfg, [])
        with pytest.raises(ValueError, match="duplicate qid"):
            run_service(4, store, cfg, [jobs[0], jobs[0]])
        with pytest.raises(ValueError, match="query_batch"):
            run_service(4, store, replace(cfg, query_batch=4), jobs)

    def test_oracle_identity_and_accounting(
        self, staged, small_queries, serial_reference
    ):
        store, cfg = staged
        jobs = poisson_arrivals(small_queries, rate=5.0, seed=1)
        res = run_service(4, store, cfg, jobs, service=SERVICE_CFG)
        assert res.report == serial_reference
        n = len(small_queries)
        assert res.latency["all"]["count"] == n
        assert res.latency["throughput_qps"] > 0
        assert sorted(r["qid"] for r in res.per_query) == list(range(n))
        assert all(r["latency_s"] >= 0 for r in res.per_query)
        assert all(
            r["completed"] >= r["arrival"] for r in res.per_query
        )
        assert 1 <= res.waves <= n
        gauges = res.result.metrics["global"]["gauges"]
        assert gauges["service.queries"] == n
        assert gauges["service.waves"] == res.waves
        assert gauges["service.p95_s"] >= gauges["service.p50_s"] >= 0

    def test_trace_driven_arrivals(
        self, staged, small_queries, serial_reference
    ):
        store, cfg = staged
        # Reverse arrival order vs qid order: output must still be in
        # qid order (the oracle's).
        lines = [
            f"{0.1 * (len(small_queries) - qid)} {qid}"
            for qid in range(len(small_queries))
        ]
        jobs = trace_arrivals("\n".join(lines), small_queries)
        res = run_service(4, store, cfg, jobs, service=SERVICE_CFG)
        assert res.report == serial_reference

    def test_ev_query_spans(self, staged, small_queries):
        store, cfg = staged
        jobs = poisson_arrivals(small_queries, rate=5.0, seed=1)
        tracer = Tracer()
        res = run_service(4, store, cfg, jobs, service=SERVICE_CFG,
                          tracer=tracer)
        spans = tracer.by_kind(EV_QUERY)
        assert len(spans) == len(small_queries)
        by_arrival = {j.qid: j.arrival for j in jobs}
        for ev in spans:
            lane, qid, wave, nbytes = ev.name, *ev.args
            assert lane in ("interactive", "scan")
            assert ev.t0 == pytest.approx(by_arrival[qid])
            assert ev.t1 >= ev.t0
            assert 1 <= wave <= res.waves and nbytes > 0

    def test_priority_lane_beats_fifo_p95(
        self, staged, small_queries, serial_reference
    ):
        """The acceptance scenario at np=16: same arrivals, priority on
        vs off — the interactive lane's p95 must improve (and both runs
        stay byte-identical to the oracle)."""
        store, cfg = staged
        n = len(small_queries)
        # Burst arrival: everything lands at once, waves of 2, and the
        # three interactive queries are last in FIFO order — priority
        # pulls them into the first waves.
        jobs = [
            QueryJob(qid=i, arrival=0.0, record=small_queries[i],
                     lane="interactive" if i >= n - 3 else "scan")
            for i in range(n)
        ]
        p95 = {}
        for priority in (True, False):
            scfg = ServiceConfig(max_wave=2, admission_delay=0.05,
                                 priority=priority)
            res = run_service(16, store, cfg, jobs, service=scfg)
            assert res.report == serial_reference
            p95[priority] = res.latency["lanes"]["interactive"]["p95_s"]
        assert p95[True] < p95[False]

    def test_worker_death_recovers(
        self, staged, small_queries, serial_reference
    ):
        store, cfg = staged
        jobs = poisson_arrivals(small_queries, rate=5.0, seed=1)
        plan = FaultPlan(events=(CrashFault(rank=2, time=0.3),))
        res = run_service(4, store, cfg, jobs, service=SERVICE_CFG,
                          faults=plan)
        assert res.report == serial_reference
        assert res.result.dead_ranks == (2,)
        rep = res.result.fault_report
        assert rep.count("detect:worker-dead") == 1
        assert rep.count("recover:adopt") == 1


# ----------------------------------------------------------------------
# stale fragment maps fail fast
# ----------------------------------------------------------------------
def _repartition_at(t: float):
    """An out-of-band 'formatdb' that rewrites the volume index at t."""

    def hook(cluster):
        cluster.engine.schedule(
            t,
            lambda: cluster.shared_fs.store.write(
                "nr.xin", 0, b"REPARTITIONED"
            ),
        )

    return hook


class TestStaleFragmentMap:
    def test_service_rejects_repartitioned_db(self, staged, small_queries):
        store, cfg = staged
        jobs = poisson_arrivals(small_queries, rate=2.0, seed=3)
        with pytest.raises(ProcessFailure, match="re-partitioned"):
            run_service(
                4, store, cfg, jobs,
                service=ServiceConfig(max_wave=3, admission_delay=0.1),
                on_cluster=_repartition_at(1.0),
            )

    def test_query_batch_rejects_repartitioned_db(
        self, staged, small_queries
    ):
        store, cfg = staged
        cfg = replace(cfg, query_batch=3)
        with pytest.raises(ProcessFailure, match="re-partitioned"):
            run_pioblast(4, store, cfg, on_cluster=_repartition_at(0.01))

    def test_unchanged_db_passes(self, staged, small_queries,
                                 serial_reference):
        """The guard must not fire on a database nobody touched."""
        store, cfg = staged
        cfg = replace(cfg, query_batch=3)
        result = run_pioblast(4, store, cfg)
        assert result.store.read_all(cfg.output_path) == serial_reference


# ----------------------------------------------------------------------
# chaos: service under randomized worker kills (tier 2)
# ----------------------------------------------------------------------
@pytest.mark.chaos
@pytest.mark.parametrize("rank, t", [
    (1, 0.05), (3, 0.2), (2, 0.6), (1, 1.1), (3, 1.7),
])
def test_service_chaos_worker_kill(
    staged, small_queries, serial_reference, rank, t
):
    store, cfg = staged
    jobs = poisson_arrivals(small_queries, rate=5.0, seed=1)
    plan = FaultPlan(events=(CrashFault(rank=rank, time=t),))
    res = run_service(4, store, cfg, jobs, service=SERVICE_CFG, faults=plan)
    assert res.report == serial_reference
    assert sorted(r["qid"] for r in res.per_query) == list(
        range(len(small_queries))
    )
