"""Adaptive granularity and weighted partitioning (§5 extensions)."""

import pytest

from repro.blast.alphabet import PROTEIN
from repro.blast.fasta import SeqRecord
from repro.blast.formatdb import build_index
from repro.parallel.loadbalance import (
    fragments_from_budgets,
    refinement_schedule,
    weighted_partition,
)


def index_of(n=40, L=50):
    recs = [SeqRecord(f"r{i}", "A" * L) for i in range(n)]
    idx, _, _ = build_index(recs, PROTEIN, "t")
    return idx


class TestRefinementSchedule:
    def test_budgets_sum_to_total(self):
        for total in (1000, 12345, 7):
            for w in (1, 3, 8):
                budgets = refinement_schedule(total, w)
                assert sum(budgets) == total

    def test_starts_coarse_ends_fine(self):
        budgets = refinement_schedule(100_000, 4)
        assert budgets[0] > budgets[-1]

    def test_first_round_is_coarse_fraction(self):
        budgets = refinement_schedule(100_000, 4, coarse_fraction=0.5)
        assert budgets[0] == 12_500  # (100000/4) * 0.5

    def test_coarse_to_fine_trend(self):
        budgets = refinement_schedule(50_000, 3)
        # First fragment is the largest; the final (remainder) round may
        # jitter by a few letters but stays within 2x of the smallest.
        assert budgets[0] == max(budgets)
        assert max(budgets[-3:]) <= 2 * min(budgets)

    def test_validation(self):
        with pytest.raises(ValueError):
            refinement_schedule(100, 0)
        with pytest.raises(ValueError):
            refinement_schedule(100, 2, coarse_fraction=0.0)
        with pytest.raises(ValueError):
            refinement_schedule(100, 2, refine_factor=1.0)


class TestFragmentsFromBudgets:
    def test_covers_all_sequences(self):
        idx = index_of()
        frags = fragments_from_budgets(idx, refinement_schedule(
            idx.total_letters, 4))
        assert frags[0].lo == 0
        assert frags[-1].hi == idx.nseqs
        for a, b in zip(frags, frags[1:]):
            assert a.hi == b.lo

    def test_respects_sequence_boundaries(self):
        idx = index_of(n=10, L=100)
        frags = fragments_from_budgets(idx, [250, 250, 500])
        # cuts land on multiples of 100 letters
        for vf in frags:
            assert vf.xsq_range[0] % 100 == 0


class TestWeightedPartition:
    def test_proportional_sizes(self):
        idx = index_of(n=60, L=100)
        frags = weighted_partition(idx, [1.0, 2.0, 3.0])
        sizes = [vf.xsq_range[1] for vf in frags]
        assert sizes[2] > sizes[1] > sizes[0]
        assert sum(sizes) == idx.total_letters

    def test_single_weight_takes_all(self):
        idx = index_of()
        (vf,) = weighted_partition(idx, [5.0])
        assert vf.lo == 0 and vf.hi == idx.nseqs

    def test_bad_weights(self):
        idx = index_of()
        with pytest.raises(ValueError):
            weighted_partition(idx, [])
        with pytest.raises(ValueError):
            weighted_partition(idx, [1.0, -2.0])
