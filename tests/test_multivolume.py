"""Multi-volume databases end to end (the paper's §4 nt scenario).

formatdb splits large databases into volumes with an alias file;
pioBLAST's extended input stage reads byte ranges from *several* global
files — the design alternative the paper defers, implemented here.
"""

import pytest

from repro.blast.alphabet import PROTEIN
from repro.blast.formatdb import FormatDbError, build_index
from repro.costmodel import CostModel
from repro.parallel import (
    ParallelConfig,
    run_pioblast,
    run_serial_reference,
    stage_inputs,
)
from repro.parallel.fragments import (
    VolumePiece,
    pieces_for_single_volume,
    virtual_partition_multi,
)
from repro.simmpi import FileStore


def _indexes(sizes, L=20):
    """Build volume indexes with the given sequence counts."""
    from repro.blast.fasta import SeqRecord

    out = []
    sid = 0
    for n in sizes:
        recs = [SeqRecord(f"r{sid + i}", "A" * L) for i in range(n)]
        sid += n
        idx, _, _ = build_index(recs, PROTEIN, "v")
        out.append(idx)
    return out


class TestVirtualPartitionMulti:
    def test_covers_all_sequences_globally(self):
        idxs = _indexes([10, 7, 13])
        frags = virtual_partition_multi(idxs, ["a", "b", "c"], 4)
        covered = []
        for pieces in frags:
            for p in pieces:
                covered.extend(
                    range(p.global_base, p.global_base + p.num_sequences)
                )
        assert covered == list(range(30))

    def test_fragment_can_span_volumes(self):
        idxs = _indexes([5, 5])
        frags = virtual_partition_multi(idxs, ["a", "b"], 3)
        multi = [pieces for pieces in frags if len(pieces) > 1]
        assert multi  # some fragment crosses the volume boundary

    def test_single_fragment_takes_everything(self):
        idxs = _indexes([4, 4, 4])
        (pieces,) = virtual_partition_multi(idxs, ["a", "b", "c"], 1)
        assert [p.volume for p in pieces] == [0, 1, 2]
        assert sum(p.num_sequences for p in pieces) == 12

    def test_balanced_by_letters(self):
        idxs = _indexes([12, 12], L=50)
        frags = virtual_partition_multi(idxs, ["a", "b"], 4)
        sizes = [sum(p.xsq_range[1] for p in ps) for ps in frags]
        assert max(sizes) <= min(sizes) + 100

    def test_validation(self):
        idxs = _indexes([3])
        with pytest.raises(FormatDbError):
            virtual_partition_multi(idxs, ["a", "b"], 2)
        with pytest.raises(FormatDbError):
            virtual_partition_multi([], [], 2)
        with pytest.raises(FormatDbError):
            virtual_partition_multi(idxs, ["a"], 0)

    def test_single_volume_adapter_matches(self):
        idxs = _indexes([16])
        via_multi = virtual_partition_multi(idxs, ["nr"], 4)
        via_single = pieces_for_single_volume(idxs[0], "nr", 4)
        assert [
            [(p.lo, p.hi, p.global_base) for p in ps] for ps in via_multi
        ] == [
            [(p.lo, p.hi, p.global_base) for p in ps] for ps in via_single
        ]

    def test_piece_properties(self):
        p = VolumePiece(0, "nr", 2, 5, (10, 20), (30, 60), 2)
        assert p.num_sequences == 3
        assert p.total_bytes == 80


class TestMultiVolumeDrivers:
    @pytest.fixture()
    def mv_setup(self, small_db, small_queries):
        letters = sum(len(r.sequence) for r in small_db)

        def make():
            store = FileStore()
            cfg = stage_inputs(
                store,
                small_db,
                small_queries,
                config=ParallelConfig(cost=CostModel()),
                title="test nr",
                max_letters_per_volume=letters // 3,
            )
            return store, cfg

        return make

    def test_volumes_were_created(self, mv_setup):
        store, cfg = mv_setup()
        assert store.exists(f"{cfg.db_name}.xal")
        vols = [p for p in store.listdir() if p.endswith(".xin")]
        assert len(vols) >= 3

    def test_serial_multivolume_equals_single(self, mv_setup,
                                              serial_reference):
        store, cfg = mv_setup()
        # The serial reference fixture is single-volume; global
        # numbering makes multi-volume output identical.
        assert run_serial_reference(store, cfg, output_path="s.out") == (
            serial_reference
        )

    @pytest.mark.parametrize("nprocs", [3, 5, 8])
    def test_pioblast_multivolume_matches_serial(
        self, mv_setup, serial_reference, nprocs
    ):
        store, cfg = mv_setup()
        run_pioblast(nprocs, store, cfg)
        assert store.read_all(cfg.output_path) == serial_reference

    def test_pioblast_multivolume_with_work_queue(
        self, mv_setup, serial_reference
    ):
        from dataclasses import replace

        store, cfg = mv_setup()
        cfg = replace(cfg, adaptive_granularity=True)
        run_pioblast(4, store, cfg)
        assert store.read_all(cfg.output_path) == serial_reference
