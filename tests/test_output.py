"""Report writer: byte determinism, piecewise assembly, formats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blast.hsp import Alignment
from repro.blast.output import (
    DbStats,
    HitSummary,
    ReportWriter,
    format_bits,
    format_evalue,
)


def writer():
    return ReportWriter(
        "blastp",
        DbStats("test nr", 1000, 250_000),
        lam=0.267,
        k=0.041,
        h=0.14,
    )


def alignment(**kw):
    defaults = dict(
        query_index=0,
        subject_oid=3,
        subject_defline="subj|3| a protein",
        subject_length=222,
        score=250,
        bit_score=100.9,
        evalue=3.2e-22,
        qstart=4,
        qend=14,
        sstart=9,
        send=19,
        aligned_query="MKVLAWYQND",
        midline="MKV AW+QND",
        aligned_subject="MKVPAWFQND",
        identities=8,
        positives=9,
        gaps=0,
    )
    defaults.update(kw)
    return Alignment(**defaults)


class TestEvalueFormat:
    def test_zero_regime(self):
        assert format_evalue(1e-200) == "0.0"

    def test_scientific(self):
        assert format_evalue(3.2e-22) == "3e-22"

    def test_decimal_small(self):
        assert format_evalue(0.0123) == "0.012"

    def test_one_ish(self):
        assert format_evalue(2.34) == "2.3"

    def test_big(self):
        assert format_evalue(11.4) == "11"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_evalue(-1.0)

    @given(st.floats(min_value=1e-300, max_value=1e3))
    @settings(max_examples=80)
    def test_always_a_short_string(self, e):
        s = format_evalue(e)
        assert 0 < len(s) <= 8

    def test_bits(self):
        assert format_bits(100.94) == "100.9"


class TestPieces:
    def test_preamble_contains_database(self):
        p = writer().preamble().decode()
        assert "test nr" in p
        assert "1,000 sequences" in p
        assert p.startswith("BLASTP")

    def test_header_lists_summaries_in_order(self):
        summaries = [
            HitSummary("first hit", 200.0, 1e-50),
            HitSummary("second hit", 100.0, 1e-20),
        ]
        h = writer().query_header("q1 test", 333, summaries).decode()
        assert "Query= q1 test" in h
        assert h.index("first hit") < h.index("second hit")
        assert "(333 letters)" in h

    def test_header_no_hits(self):
        h = writer().query_header("q", 10, []).decode()
        assert "No hits found" in h

    def test_long_defline_truncated_in_summary(self):
        s = [HitSummary("x" * 100, 10.0, 1.0)]
        h = writer().query_header("q", 10, s).decode()
        assert "xxx..." in h

    def test_block_contains_scores_and_coords(self):
        b = writer().alignment_block(alignment()).decode()
        assert " Score = 100.9 bits (250), Expect = 3e-22" in b
        assert "Identities = 8/10 (80%)" in b
        assert "Query  5" in b  # 1-based display
        assert "Sbjct  10" in b
        assert "Length = 222" in b

    def test_block_gap_line_only_when_gaps(self):
        no_gaps = writer().alignment_block(alignment()).decode()
        assert "Gaps =" not in no_gaps
        g = alignment(
            gaps=1,
            aligned_query="MKV-LAWYQND",
            midline="MKV LAW+QND",
            aligned_subject="MKVPLAWFQND",
            send=20,
        )
        with_gaps = writer().alignment_block(g).decode()
        assert "Gaps = 1/11" in with_gaps

    def test_block_wraps_long_alignments(self):
        n = 150
        al = alignment(
            aligned_query="A" * n,
            midline="A" * n,
            aligned_subject="A" * n,
            qend=4 + n,
            send=9 + n,
            identities=n,
            positives=n,
        )
        b = writer().alignment_block(al).decode()
        assert b.count("Query ") == 3  # 60 + 60 + 30

    def test_block_coordinates_skip_gaps(self):
        al = alignment(
            aligned_query="MK--VLAW",
            midline="MK  VLAW",
            aligned_subject="MKAAVLAW",
            qstart=0,
            qend=6,
            sstart=0,
            send=8,
            gaps=2,
            identities=6,
            positives=6,
        )
        b = writer().alignment_block(al).decode()
        # query consumed 6 residues => last coordinate 6
        assert "Query  1      MK--VLAW  6" in b

    def test_footer_contains_params_and_space(self):
        f = writer().query_footer(1.25e9).decode()
        assert "Lambda" in f
        assert "0.267" in f
        assert "Effective search space used: 1250000000" in f

    def test_determinism(self):
        w1, w2 = writer(), writer()
        al = alignment()
        assert w1.alignment_block(al) == w2.alignment_block(al)
        assert w1.preamble() == w2.preamble()

    def test_program_banner_adapts(self):
        w = ReportWriter(
            "blastn", DbStats("nt", 10, 100), lam=1.37, k=0.71, h=1.3
        )
        assert w.preamble().decode().startswith("BLASTN")


class TestPiecewiseAssembly:
    def test_block_sizes_known_in_advance(self):
        """The pioBLAST contract: len(block) is exactly what lands in
        the file (offset arithmetic depends on it)."""
        w = writer()
        al = alignment()
        block = w.alignment_block(al)
        assert isinstance(block, bytes)
        assert len(block) == len(w.alignment_block(al))
