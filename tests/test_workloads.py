"""Synthetic workload generators and query sampling."""

import numpy as np
import pytest

from repro.blast.alphabet import DNA, PROTEIN
from repro.blast.fasta import format_record
from repro.blast.karlin import ROBINSON_FREQS
from repro.workloads import (
    SynthSpec,
    mutate_sequence,
    query_set_bytes,
    sample_queries,
    synthesize_dna_records,
    synthesize_protein_records,
)


class TestSynthSpec:
    def test_defaults_valid(self):
        SynthSpec()

    def test_validation(self):
        with pytest.raises(ValueError):
            SynthSpec(num_sequences=0)
        with pytest.raises(ValueError):
            SynthSpec(mean_length=5)
        with pytest.raises(ValueError):
            SynthSpec(family_fraction=1.5)
        with pytest.raises(ValueError):
            SynthSpec(family_size=1)


class TestProteinSynthesis:
    def test_count_and_alphabet(self):
        recs = synthesize_protein_records(SynthSpec(num_sequences=50))
        assert len(recs) == 50
        for r in recs:
            assert PROTEIN.is_valid_strict(r.sequence)

    def test_deterministic_by_seed(self):
        a = synthesize_protein_records(SynthSpec(num_sequences=30, seed=1))
        b = synthesize_protein_records(SynthSpec(num_sequences=30, seed=1))
        assert [r.sequence for r in a] == [r.sequence for r in b]

    def test_different_seeds_differ(self):
        a = synthesize_protein_records(SynthSpec(num_sequences=30, seed=1))
        b = synthesize_protein_records(SynthSpec(num_sequences=30, seed=2))
        assert [r.sequence for r in a] != [r.sequence for r in b]

    def test_family_structure_in_deflines(self):
        recs = synthesize_protein_records(
            SynthSpec(num_sequences=40, family_fraction=0.5, family_size=4)
        )
        founders = [r for r in recs if "founder" in r.defline]
        members = [r for r in recs if "member" in r.defline]
        singletons = [r for r in recs if "singleton" in r.defline]
        assert founders and members and singletons
        assert len(founders) + len(members) + len(singletons) == 40

    def test_family_members_are_similar_to_founder(self):
        recs = synthesize_protein_records(
            SynthSpec(num_sequences=20, family_fraction=1.0, family_size=5,
                      mutation_rate=0.1, indel_rate=0.0)
        )
        f = PROTEIN.encode(recs[0].sequence)
        m = PROTEIN.encode(recs[1].sequence)
        assert len(f) == len(m)
        identity = (f == m).mean()
        assert identity > 0.8

    def test_unique_ids(self):
        recs = synthesize_protein_records(SynthSpec(num_sequences=25))
        assert len({r.id for r in recs}) == 25

    def test_composition_roughly_robinson(self):
        recs = synthesize_protein_records(
            SynthSpec(num_sequences=60, mean_length=400, family_fraction=0.0)
        )
        codes = np.concatenate([PROTEIN.encode(r.sequence) for r in recs])
        freqs = np.bincount(codes, minlength=24)[:20] / len(codes)
        assert np.abs(freqs - ROBINSON_FREQS).max() < 0.02


class TestDnaSynthesis:
    def test_alphabet(self):
        recs = synthesize_dna_records(SynthSpec(num_sequences=10))
        for r in recs:
            assert set(r.sequence) <= set("ACGT")


class TestMutate:
    def test_substitutions_only_keeps_length(self):
        rng = np.random.default_rng(0)
        probs = np.full(20, 0.05)
        seq = np.zeros(200, dtype=np.uint8)
        out = mutate_sequence(seq, rng, nstd=20, probs=probs,
                              mutation_rate=0.2, indel_rate=0.0)
        assert len(out) == 200
        assert (out != seq).any()

    def test_indels_change_length_sometimes(self):
        rng = np.random.default_rng(3)
        probs = np.full(20, 0.05)
        seq = np.zeros(300, dtype=np.uint8)
        lengths = {
            len(mutate_sequence(seq, rng, nstd=20, probs=probs,
                                mutation_rate=0.0, indel_rate=0.05))
            for _ in range(10)
        }
        assert len(lengths) > 1

    def test_original_not_mutated(self):
        rng = np.random.default_rng(1)
        probs = np.full(20, 0.05)
        seq = np.arange(100, dtype=np.uint8) % 20
        before = seq.copy()
        mutate_sequence(seq, rng, nstd=20, probs=probs,
                        mutation_rate=0.5, indel_rate=0.1)
        assert np.array_equal(seq, before)


class TestSampling:
    def test_reaches_target_bytes(self):
        db = synthesize_protein_records(SynthSpec(num_sequences=100))
        qs = sample_queries(db, 5000, seed=0)
        assert query_set_bytes(qs) >= 5000

    def test_deterministic(self):
        db = synthesize_protein_records(SynthSpec(num_sequences=50))
        a = sample_queries(db, 2000, seed=4)
        b = sample_queries(db, 2000, seed=4)
        assert [r.id for r in a] == [r.id for r in b]

    def test_without_replacement_until_exhausted(self):
        db = synthesize_protein_records(SynthSpec(num_sequences=30))
        qs = sample_queries(db, 10**9, seed=0)  # asks for more than exists
        assert len(qs) == 30
        assert len({r.id for r in qs}) == 30

    def test_with_repeats_keeps_growing(self):
        db = synthesize_protein_records(SynthSpec(num_sequences=10))
        target = query_set_bytes(db) * 3
        qs = sample_queries(db, target, seed=0, allow_repeats=True)
        assert query_set_bytes(qs) >= target

    def test_queries_come_from_db(self):
        db = synthesize_protein_records(SynthSpec(num_sequences=40))
        ids = {r.id for r in db}
        qs = sample_queries(db, 1500, seed=2)
        assert all(q.id in ids for q in qs)

    def test_bad_args(self):
        db = synthesize_protein_records(SynthSpec(num_sequences=5))
        with pytest.raises(ValueError):
            sample_queries(db, 0)
        with pytest.raises(ValueError):
            sample_queries([], 100)

    def test_query_set_bytes_matches_fasta(self):
        db = synthesize_protein_records(SynthSpec(num_sequences=5))
        assert query_set_bytes(db) == sum(len(format_record(r)) for r in db)
