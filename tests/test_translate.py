"""Six-frame translation and tblastn-style search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blast.fasta import SeqRecord
from repro.blast.translate import (
    CODON_TABLE,
    TranslatedHit,
    reverse_complement,
    six_frame_translations,
    tblastn_search,
    translate,
)


class TestCodonTable:
    def test_64_codons(self):
        assert len(CODON_TABLE) == 64

    def test_known_codons(self):
        assert CODON_TABLE["ATG"] == "M"  # start
        assert CODON_TABLE["TGG"] == "W"
        assert CODON_TABLE["TAA"] == "*"
        assert CODON_TABLE["TAG"] == "*"
        assert CODON_TABLE["TGA"] == "*"
        assert CODON_TABLE["GGC"] == "G"
        assert CODON_TABLE["AAA"] == "K"
        assert CODON_TABLE["GAT"] == "D"
        assert CODON_TABLE["TTT"] == "F"

    def test_exactly_three_stops(self):
        assert sum(1 for v in CODON_TABLE.values() if v == "*") == 3

    def test_all_amino_acids_covered(self):
        assert set(CODON_TABLE.values()) == set("ACDEFGHIKLMNPQRSTVWY*")


class TestReverseComplement:
    def test_basic(self):
        assert reverse_complement("ACGT") == "ACGT"
        assert reverse_complement("AAGG") == "CCTT"

    def test_n_safe(self):
        assert reverse_complement("ANT") == "ANT"

    @given(st.text(alphabet="ACGT", max_size=200))
    @settings(max_examples=50)
    def test_involution(self, s):
        assert reverse_complement(reverse_complement(s)) == s


class TestTranslate:
    def test_forward_frames(self):
        dna = "ATGGCC"  # M A
        assert translate(dna, 1) == "MA"
        assert translate(dna, 2) == "W"  # TGG CC -> W
        assert translate(dna, 3) == "G"  # GGC C -> G

    def test_reverse_frame(self):
        # revcomp(ATG) = CAT -> H
        assert translate("ATG", -1) == "H"

    def test_ambiguity_becomes_x(self):
        assert translate("ATN", 1) == "X"

    def test_bad_frame(self):
        with pytest.raises(ValueError):
            translate("ATG", 0)
        with pytest.raises(ValueError):
            translate("ATG", 4)

    def test_short_sequence_empty(self):
        assert translate("AT", 1) == ""

    @given(st.text(alphabet="ACGT", min_size=3, max_size=300))
    @settings(max_examples=50)
    def test_lengths(self, dna):
        for f in (1, 2, 3, -1, -2, -3):
            assert len(translate(dna, f)) == (len(dna) - (abs(f) - 1)) // 3


class TestSixFrames:
    def test_six_records_with_frame_tags(self):
        rec = SeqRecord("chr1", "ATGGCCATTGAC" * 3)
        frames = six_frame_translations(rec)
        assert len(frames) == 6
        assert all("[frame=" in f.defline for f in frames)

    def test_short_sequences_drop_empty_frames(self):
        rec = SeqRecord("tiny", "ATGG")  # frames +3/-3 give 0 codons
        frames = six_frame_translations(rec)
        assert 0 < len(frames) < 6


class TestTblastn:
    def test_finds_protein_in_forward_frame(self):
        # Back-translate a peptide into unambiguous codons.
        peptide = "MKVLAWYQNDCEHGISTMKVLAWYQNDCEHGIST"
        codon_of = {}
        for codon, aa in sorted(CODON_TABLE.items()):
            codon_of.setdefault(aa, codon)
        dna = "".join(codon_of[aa] for aa in peptide)
        hits, mapping = tblastn_search(
            [SeqRecord("q", peptide)],
            [SeqRecord("genome", "ACGTACGTAGG" + dna + "CCGTA")],
        )
        assert hits[0].alignments, "peptide must be found in translation"
        top = hits[0].alignments[0]
        tr = mapping[top.subject_oid]
        assert tr.source_index == 0
        assert "[frame=" in top.subject_defline

    def test_finds_protein_on_reverse_strand(self):
        peptide = "MKVLAWYQNDCEHGISTMKVLAWYQNDCEHGIST"
        codon_of = {}
        for codon, aa in sorted(CODON_TABLE.items()):
            codon_of.setdefault(aa, codon)
        dna = "".join(codon_of[aa] for aa in peptide)
        genome = reverse_complement("AAA" + dna + "TTTT")
        hits, mapping = tblastn_search(
            [SeqRecord("q", peptide)], [SeqRecord("genome", genome)]
        )
        assert hits[0].alignments
        tr = mapping[hits[0].alignments[0].subject_oid]
        assert tr.frame < 0

    def test_rejects_blastn_params(self):
        from repro.blast.engine import SearchParams

        with pytest.raises(ValueError):
            tblastn_search([], [], SearchParams(program="blastn",
                                                gapped=False))

    def test_mapping_aligned_with_translated_oids(self):
        recs = [SeqRecord(f"g{i}", "ATGGCCATTGACGGG" * 4) for i in range(3)]
        _, mapping = tblastn_search([SeqRecord("q", "MAID")], recs)
        assert all(isinstance(m, TranslatedHit) for m in mapping)
        assert {m.source_index for m in mapping} == {0, 1, 2}
