"""The command-line interface end to end (real filesystem I/O)."""

import pathlib

import pytest

from repro.cli import build_parser, main
from repro.blast.fasta import write_fasta
from repro.workloads import SynthSpec, synthesize_protein_records


@pytest.fixture()
def fasta_file(tmp_path):
    db = synthesize_protein_records(SynthSpec(num_sequences=30,
                                              mean_length=120, seed=5))
    path = tmp_path / "db.fasta"
    path.write_text(write_fasta(db))
    return path, db


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestFormatDbCommand:
    def test_creates_files(self, fasta_file, tmp_path):
        path, _ = fasta_file
        out = tmp_path / "dbdir"
        rc = main(["formatdb", str(path), "--name", "nr",
                   "--outdir", str(out)])
        assert rc == 0
        for ext in ("xin", "xhr", "xsq"):
            assert (out / f"nr.{ext}").exists()

    def test_multi_volume(self, fasta_file, tmp_path):
        path, db = fasta_file
        letters = sum(len(r.sequence) for r in db)
        out = tmp_path / "dbdir"
        main(["formatdb", str(path), "--name", "nr", "--outdir", str(out),
              "--volume-letters", str(letters // 3)])
        assert (out / "nr.xal").exists()
        assert (out / "nr.00.xin").exists()


class TestSearchCommand:
    def test_search_to_file(self, fasta_file, tmp_path, capsys):
        path, db = fasta_file
        out = tmp_path / "dbdir"
        main(["formatdb", str(path), "--name", "nr", "--outdir", str(out)])
        qpath = tmp_path / "q.fasta"
        qpath.write_text(write_fasta(db[:2]))
        report = tmp_path / "report.txt"
        rc = main(["search", str(qpath), "--db", "nr",
                   "--dbdir", str(out), "--out", str(report)])
        assert rc == 0
        text = report.read_text()
        assert text.startswith("BLASTP")
        # queries sampled from the db find themselves
        assert db[0].defline in text

    def test_search_to_stdout(self, fasta_file, tmp_path, capsys):
        path, db = fasta_file
        out = tmp_path / "dbdir"
        main(["formatdb", str(path), "--name", "nr", "--outdir", str(out)])
        qpath = tmp_path / "q.fasta"
        qpath.write_text(write_fasta(db[:1]))
        main(["search", str(qpath), "--db", "nr", "--dbdir", str(out)])
        captured = capsys.readouterr()
        assert "Query=" in captured.out


class TestSimulateCommand:
    @pytest.mark.parametrize("program", ["pioblast", "mpiblast", "queryseg"])
    def test_simulate_prints_breakdown(self, program, capsys):
        rc = main([
            "simulate", program, "--nprocs", "4",
            "--db-sequences", "60", "--mean-length", "100",
            "--query-bytes", "1000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "search share" in out
        assert "total" in out

    def test_simulate_blade_platform(self, capsys):
        rc = main([
            "simulate", "pioblast", "--nprocs", "3", "--platform", "blade",
            "--db-sequences", "60", "--mean-length", "100",
            "--query-bytes", "800",
        ])
        assert rc == 0
        assert "ncsu-blade" in capsys.readouterr().out


class TestSimulateObservability:
    def test_trace_and_metrics_files(self, tmp_path, capsys):
        import json

        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        rc = main([
            "simulate", "pioblast", "--nprocs", "4",
            "--db-sequences", "60", "--mean-length", "100",
            "--query-bytes", "1000",
            "--trace", str(trace), "--metrics-json", str(metrics),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Bottleneck attribution" in out
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        m = json.loads(metrics.read_text())
        assert m["makespan"] > 0
        assert m["critical_path_coverage"] > 0.9

    def test_faults_and_trace_compose(self, tmp_path, capsys):
        """--faults events appear in the --trace with matching virtual
        timestamps (kill=2@0.05 -> instants at 50000 µs)."""
        import json

        trace = tmp_path / "trace.json"
        rc = main([
            "simulate", "pioblast", "--nprocs", "4",
            "--db-sequences", "60", "--mean-length", "100",
            "--query-bytes", "1000",
            "--faults", "kill=2@0.05", "--trace", str(trace),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "dead ranks: [2]" in out
        doc = json.loads(trace.read_text())
        faults = [
            e for e in doc["traceEvents"]
            if e.get("cat", "").startswith("fault")
        ]
        assert faults, "fault instants missing from trace"
        for ev in faults:
            assert ev["ph"] == "i"
            assert ev["ts"] == pytest.approx(0.05 * 1e6)

    def test_metrics_json_without_trace(self, tmp_path):
        import json

        metrics = tmp_path / "metrics.json"
        rc = main([
            "simulate", "mpiblast", "--nprocs", "4",
            "--db-sequences", "60", "--mean-length", "100",
            "--query-bytes", "1000",
            "--metrics-json", str(metrics),
        ])
        assert rc == 0
        m = json.loads(metrics.read_text())
        assert m["counters"]["msgs_sent"] > 0
        assert "critical_path" not in m
