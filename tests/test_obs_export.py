"""Exporters (Chrome trace + run metrics) and the bench comparator."""

from __future__ import annotations

import json

import pytest

from repro.experiments.common import ExperimentWorkload, run_program_raw
from repro.obs import (
    Tracer,
    chrome_trace,
    run_metrics,
    write_chrome_trace,
    write_run_metrics,
)
from repro.obs.compare import Delta, compare_bench, load_bench, main
from repro.workloads import SynthSpec

SMALL = ExperimentWorkload(
    db_spec=SynthSpec(
        num_sequences=90,
        mean_length=140,
        family_fraction=0.6,
        family_size=5,
        seed=7,
    ),
    query_bytes=1800,
)


@pytest.fixture(scope="module")
def traced_run():
    t = Tracer()
    _b, result, _store, _cfg = run_program_raw(
        "pioblast", 4, SMALL, tracer=t
    )
    return result


class TestChromeTrace:
    def test_schema(self, traced_run):
        doc = chrome_trace(traced_run.events, traced_run.nprocs)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        assert events
        names = set()
        for ev in events:
            assert ev["ph"] in ("M", "X", "i", "C"), ev
            assert ev["pid"] == 0
            assert isinstance(ev["tid"], int)
            assert 0 <= ev["tid"] <= traced_run.nprocs
            if ev["ph"] == "M":
                names.add(ev["args"]["name"])
                continue
            assert ev["ts"] >= 0.0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0.0
                assert ev["cat"]
            if ev["ph"] == "i":
                assert ev["s"] == "t"
            if ev["ph"] == "C":
                assert ev["name"].startswith("streams:")
                assert isinstance(ev["args"]["streams"], int)
        # One named track per rank, plus the scheduler.
        for r in range(traced_run.nprocs):
            assert f"rank {r}" in names
        assert "scheduler" in names

    def test_json_serializable_and_microseconds(self, traced_run):
        doc = chrome_trace(traced_run.events, traced_run.nprocs)
        text = json.dumps(doc)
        assert json.loads(text) == doc
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        # ts is microseconds: the run lasts > 1 virtual second, so some
        # span must start beyond 1e6 µs.
        assert max(e["ts"] for e in spans) > 1e6

    def test_write(self, traced_run, tmp_path):
        p = tmp_path / "trace.json"
        write_chrome_trace(p, traced_run.events, traced_run.nprocs)
        assert json.loads(p.read_text())["traceEvents"]


class TestRunMetrics:
    def test_keys(self, traced_run):
        m = run_metrics(traced_run, program="pioblast")
        assert m["program"] == "pioblast"
        assert m["makespan"] == traced_run.makespan
        assert m["phases"]["search"] > 0
        assert m["counters"]["msgs_sent"] > 0
        assert 0.9 <= m["critical_path_coverage"] <= 1.0 + 1e-9
        assert sum(m["critical_path"].values()) == pytest.approx(
            traced_run.makespan, rel=1e-6
        )

    def test_untraced_has_no_attribution(self):
        _b, result, _store, _cfg = run_program_raw("pioblast", 4, SMALL)
        m = run_metrics(result, program="pioblast")
        assert "critical_path" not in m
        assert m["counters"]["msgs_sent"] > 0

    def test_write(self, traced_run, tmp_path):
        p = tmp_path / "metrics.json"
        write_run_metrics(p, traced_run, program="pioblast")
        assert json.loads(p.read_text())["makespan"] > 0


def _doc(makespan: float, search: float = 10.0) -> dict:
    return {
        "runs": {
            "pioblast/np4": {
                "makespan": makespan,
                "phases": {"search": search},
            }
        }
    }


class TestCompare:
    def test_identical_docs_no_deltas(self):
        assert compare_bench(_doc(100.0), _doc(100.0)) == []

    def test_small_change_not_flagged(self):
        assert compare_bench(_doc(100.0), _doc(104.0)) == []

    def test_regression_flagged(self):
        deltas = compare_bench(_doc(100.0), _doc(110.0))
        assert len(deltas) == 1
        d = deltas[0]
        assert d.key == "makespan" and d.regression
        assert d.ratio == pytest.approx(0.10)

    def test_improvement_flagged_but_not_regression(self):
        deltas = compare_bench(_doc(100.0), _doc(80.0))
        assert len(deltas) == 1 and not deltas[0].regression

    def test_nested_sections_compared(self):
        deltas = compare_bench(
            _doc(100.0, search=10.0), _doc(100.0, search=20.0)
        )
        assert [d.key for d in deltas] == ["phases.search"]

    def test_threshold_parameter(self):
        assert compare_bench(_doc(100.0), _doc(110.0), threshold=0.2) == []

    def test_delta_render(self):
        d = Delta("run", "makespan", 100.0, 110.0)
        assert "WORSE" in d.render()

    def test_cli_exit_codes(self, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps(_doc(100.0)))
        new.write_text(json.dumps(_doc(100.0)))
        assert main([str(old), str(new)]) == 0
        new.write_text(json.dumps(_doc(150.0)))
        assert main([str(old), str(new)]) == 1
        assert main([str(old), str(new), "--threshold", "0.6"]) == 0
        assert load_bench(old)["runs"]
