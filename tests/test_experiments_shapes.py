"""Experiment harnesses reproduce the paper's qualitative shapes.

These run the real harnesses on a scaled-down workload (fast), asserting
the *shape* claims the paper makes; the benchmarks run the full
calibrated workload and print paper-vs-measured tables.
"""

import pytest

from repro.experiments.common import ExperimentWorkload, format_table
from repro.workloads import SynthSpec

SMALL = ExperimentWorkload(
    db_spec=SynthSpec(
        num_sequences=120,
        mean_length=150,
        family_fraction=0.6,
        family_size=5,
        seed=31,
    ),
    query_bytes=3500,
)


@pytest.fixture(scope="module")
def table1_result():
    from repro.experiments.table1 import run_table1

    return run_table1(SMALL, nprocs=8)


class TestTable1Shapes:
    def test_pio_beats_mpi_overall(self, table1_result):
        assert table1_result.pio.total < table1_result.mpi.total

    def test_output_stage_improvement_dominant(self, table1_result):
        assert table1_result.mpi.output > 5 * table1_result.pio.output

    def test_copy_vs_input(self, table1_result):
        assert table1_result.mpi.copy_input > table1_result.pio.copy_input

    def test_search_shares(self, table1_result):
        assert table1_result.pio.search_share > table1_result.mpi.search_share

    def test_render(self, table1_result):
        from repro.experiments.table1 import render_table1

        text = render_table1(table1_result)
        assert "mpiBLAST" in text and "paper" in text


class TestFig1aShape:
    def test_search_share_falls_with_processes(self):
        from repro.experiments.fig1a import run_fig1a

        res = run_fig1a(SMALL, process_counts=(4, 8, 16))
        shares = [res.breakdowns[p].search_share for p in (4, 8, 16)]
        assert shares[0] > shares[1] > shares[2]


class TestFig1bShape:
    def test_total_rises_with_fragment_count(self):
        from repro.experiments.fig1b import run_fig1b

        res = run_fig1b(SMALL, nprocs=6, fragment_counts=(5, 15, 30))
        totals = [res.breakdowns[f].total for f in (5, 15, 30)]
        assert totals[0] < totals[1] < totals[2]

    def test_both_components_rise(self):
        from repro.experiments.fig1b import run_fig1b

        res = run_fig1b(SMALL, nprocs=6, fragment_counts=(5, 30))
        assert res.breakdowns[30].search > res.breakdowns[5].search
        assert res.breakdowns[30].non_search > res.breakdowns[5].non_search


class TestTable2Shape:
    def test_output_roughly_linear_in_query_size(self):
        from repro.experiments.table2 import run_table2

        res = run_table2(SMALL, query_bytes=(1200, 2400, 4800))
        outs = [r.output_bytes for r in res.rows]
        assert outs[0] < outs[1] < outs[2]
        ratio31 = outs[2] / outs[0]
        assert 2.0 < ratio31 < 8.5  # ~4x for 4x queries, loosely

    def test_rows_record_query_counts(self):
        from repro.experiments.table2 import run_table2

        res = run_table2(SMALL, query_bytes=(1200,))
        assert res.rows[0].num_queries > 0


class TestFig3aShape:
    @pytest.fixture(scope="class")
    def res(self):
        from repro.experiments.fig3a import run_fig3a

        return run_fig3a(SMALL, process_counts=(4, 8, 16))

    def test_pio_total_monotone_down(self, res):
        t = [res.pio[p].total for p in (4, 8, 16)]
        assert t[0] > t[1] > t[2]

    def test_pio_search_time_scales(self, res):
        s = [res.pio[p].search for p in (4, 8, 16)]
        assert s[0] > s[1] > s[2]

    def test_mpi_non_search_grows(self, res):
        ns = [res.mpi[p].non_search for p in (4, 8, 16)]
        assert ns[-1] > ns[0]

    def test_pio_beats_mpi_everywhere(self, res):
        for p in (4, 8, 16):
            assert res.pio[p].total < res.mpi[p].total


class TestFig4Shape:
    def test_nfs_hurts_mpi_more(self):
        from repro.experiments.fig4 import run_fig4

        res = run_fig4(SMALL, process_counts=(4, 8))
        # pio keeps a higher search share than mpi on NFS at any scale
        for p in (4, 8):
            assert res.pio[p].search_share > res.mpi[p].search_share


class TestFormatDbCost:
    def test_repartitioning_cost_reported(self):
        from repro.experiments.formatdb_cost import run_formatdb_cost

        res = run_formatdb_cost(SMALL, fragment_counts=(3, 6))
        assert res.format_seconds > 0
        assert res.files_mpiblast[6] == 18
        assert res.files_pioblast == 3
        assert res.projected_nt_seconds > res.projected_nr_seconds


class TestFormatTable:
    def test_alignment_of_columns(self):
        text = format_table("t", ["a", "bb"], [[1, 2.5], [30, 4.0]],
                            note="n")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "note: n" in lines[-1]

    def test_empty_rows(self):
        text = format_table("t", ["a"], [])
        assert "a" in text
