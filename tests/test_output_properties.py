"""Property tests on the report writer's byte-layout contract.

pioBLAST's collective output only works because (a) an alignment block
renders to exactly the same bytes on any rank, (b) its size is a pure
function of the alignment record, and (c) the master can render headers
from metadata alone.  These properties are exercised with random
alignment records.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blast.hsp import Alignment
from repro.blast.output import DbStats, HitSummary, ReportWriter

_residues = "ARNDCQEGHILKMFPSTWYV"


@st.composite
def alignments(draw):
    n = draw(st.integers(min_value=1, max_value=150))
    aq = []
    asub = []
    mid = []
    identities = positives = gaps = 0
    for _ in range(n):
        kind = draw(st.sampled_from(["match", "mismatch", "qgap", "sgap"]))
        if kind == "qgap" and len(aq) > 0:
            aq.append("-")
            asub.append(draw(st.sampled_from(_residues)))
            mid.append(" ")
            gaps += 1
        elif kind == "sgap" and len(aq) > 0:
            aq.append(draw(st.sampled_from(_residues)))
            asub.append("-")
            mid.append(" ")
            gaps += 1
        elif kind == "match":
            c = draw(st.sampled_from(_residues))
            aq.append(c)
            asub.append(c)
            mid.append(c)
            identities += 1
            positives += 1
        else:
            aq.append(draw(st.sampled_from(_residues)))
            asub.append(draw(st.sampled_from(_residues)))
            mid.append(" ")
    q_res = sum(1 for c in aq if c != "-")
    s_res = sum(1 for c in asub if c != "-")
    qstart = draw(st.integers(min_value=0, max_value=5000))
    sstart = draw(st.integers(min_value=0, max_value=5000))
    return Alignment(
        query_index=0,
        subject_oid=draw(st.integers(min_value=0, max_value=10**6)),
        subject_defline=draw(
            st.text(alphabet="abcXYZ019| ._-", min_size=1, max_size=90)
        ),
        subject_length=draw(st.integers(min_value=1, max_value=10**6)),
        score=draw(st.integers(min_value=1, max_value=10**5)),
        bit_score=draw(
            st.floats(min_value=0.1, max_value=1e5, allow_nan=False)
        ),
        evalue=draw(st.floats(min_value=1e-280, max_value=100.0)),
        qstart=qstart,
        qend=qstart + max(q_res, 1),
        sstart=sstart,
        send=sstart + max(s_res, 1),
        aligned_query="".join(aq),
        midline="".join(mid),
        aligned_subject="".join(asub),
        identities=identities,
        positives=positives,
        gaps=gaps,
    )


def make_writer():
    return ReportWriter(
        "blastp", DbStats("db", 100, 25_000), lam=0.267, k=0.041, h=0.14
    )


@given(alignments())
@settings(max_examples=120, deadline=None)
def test_block_rendering_is_deterministic(al):
    w1, w2 = make_writer(), make_writer()
    assert w1.alignment_block(al) == w2.alignment_block(al)


@given(alignments())
@settings(max_examples=120, deadline=None)
def test_block_is_valid_utf8_and_terminated(al):
    block = make_writer().alignment_block(al)
    text = block.decode("utf-8")
    assert text.startswith(">")
    assert text.endswith("\n")


@given(alignments())
@settings(max_examples=80, deadline=None)
def test_block_coordinates_cover_claimed_ranges(al):
    """The rendered coordinate lines must span exactly qstart+1..qend
    and sstart+1..send (1-based, inclusive)."""
    text = make_writer().alignment_block(al).decode()
    q_lines = [ln for ln in text.splitlines() if ln.startswith("Query ")]
    s_lines = [ln for ln in text.splitlines() if ln.startswith("Sbjct ")]
    assert q_lines and s_lines
    first_q = int(q_lines[0].split()[1])
    last_q = int(q_lines[-1].split()[-1])
    assert first_q == al.qstart + 1
    assert last_q == al.qend
    first_s = int(s_lines[0].split()[1])
    last_s = int(s_lines[-1].split()[-1])
    assert first_s == al.sstart + 1
    assert last_s == al.send


@given(st.lists(alignments(), min_size=0, max_size=6))
@settings(max_examples=60, deadline=None)
def test_header_renderable_from_metadata_alone(als):
    """Headers depend only on (defline, bits, evalue) triples — what the
    workers ship — never on alignment bodies."""
    w = make_writer()
    from_alignments = w.query_header(
        "q", 100,
        [HitSummary(a.subject_defline, a.bit_score, a.evalue) for a in als],
    )
    stripped = [
        HitSummary(a.subject_defline, a.bit_score, a.evalue) for a in als
    ]
    assert w.query_header("q", 100, stripped) == from_alignments
    assert from_alignments.decode("utf-8")


@given(st.lists(alignments(), min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_offset_layout_reconstructs_concatenation(als):
    """Laying out blocks by computed offsets and writing them into a
    buffer must equal simple concatenation — the collective-write
    correctness argument in miniature."""
    w = make_writer()
    blocks = [w.alignment_block(a) for a in als]
    serial = b"".join(blocks)
    # offset layout
    buf = bytearray(len(serial))
    off = 0
    for b in blocks:
        buf[off : off + len(b)] = b
        off += len(b)
    assert bytes(buf) == serial
