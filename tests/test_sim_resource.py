"""Processor-sharing bandwidth: fair share, caps, conservation."""

import pytest

from repro.simmpi.engine import Engine, SimError
from repro.simmpi.resource import SharedBandwidth


def run_transfers(capacity, per_stream, jobs):
    """jobs: list of (start_delay, nbytes); returns per-job finish time."""
    eng = Engine()
    pipe = SharedBandwidth(eng, capacity, per_stream)
    finish = {}

    def prog(i, delay, nbytes):
        def body():
            eng.sleep(delay)
            pipe.transfer(nbytes)
            finish[i] = eng.now

        return body

    for i, (delay, nbytes) in enumerate(jobs):
        eng.spawn(prog(i, delay, nbytes), i)
    eng.run()
    return finish


class TestSingleStream:
    def test_full_rate_when_alone(self):
        f = run_transfers(100.0, None, [(0.0, 1000.0)])
        assert f[0] == pytest.approx(10.0)

    def test_per_stream_cap_applies(self):
        f = run_transfers(100.0, 25.0, [(0.0, 1000.0)])
        assert f[0] == pytest.approx(40.0)

    def test_zero_bytes_instant(self):
        f = run_transfers(100.0, None, [(0.0, 0.0)])
        assert f[0] == 0.0


class TestFairSharing:
    def test_two_equal_streams_split_capacity(self):
        f = run_transfers(100.0, None, [(0.0, 500.0), (0.0, 500.0)])
        # both run at 50 B/s → 10 s
        assert f[0] == pytest.approx(10.0)
        assert f[1] == pytest.approx(10.0)

    def test_short_stream_releases_capacity(self):
        f = run_transfers(100.0, None, [(0.0, 1000.0), (0.0, 200.0)])
        # both at 50 B/s; job1 done at 4s having moved 200;
        # job0 then finishes its remaining 800 at 100 B/s → 4 + 8 = 12.
        assert f[1] == pytest.approx(4.0)
        assert f[0] == pytest.approx(12.0)

    def test_late_arrival_shares(self):
        f = run_transfers(100.0, None, [(0.0, 1000.0), (5.0, 250.0)])
        # job0 alone 0-5s: 500 done. Then both at 50: job1 takes 5s
        # (finish 10); job0's remaining 250 at 100 B/s → 12.5.
        assert f[1] == pytest.approx(10.0)
        assert f[0] == pytest.approx(12.5)

    def test_per_stream_cap_leaves_capacity_unused(self):
        f = run_transfers(100.0, 30.0, [(0.0, 300.0), (0.0, 300.0)])
        # both capped at 30 B/s (fair share would be 50)
        assert f[0] == pytest.approx(10.0)
        assert f[1] == pytest.approx(10.0)

    def test_many_streams(self):
        n = 10
        f = run_transfers(100.0, None, [(0.0, 100.0)] * n)
        # each gets 10 B/s → all finish at 10 s
        for i in range(n):
            assert f[i] == pytest.approx(10.0)

    def test_aggregate_rate_never_exceeds_capacity(self):
        """Total bytes moved ≤ capacity × makespan."""
        jobs = [(0.0, 700.0), (1.0, 300.0), (2.0, 900.0), (2.5, 50.0)]
        eng = Engine()
        pipe = SharedBandwidth(eng, 100.0, None)
        finish = {}

        def prog(i, delay, nbytes):
            def body():
                eng.sleep(delay)
                pipe.transfer(nbytes)
                finish[i] = eng.now

            return body

        for i, (d, b) in enumerate(jobs):
            eng.spawn(prog(i, d, b), i)
        makespan = eng.run()
        total = sum(b for _, b in jobs)
        assert total <= 100.0 * makespan + 1e-6
        # and the pipe was never idle while work remained: exact optimum
        assert makespan == pytest.approx(total / 100.0 + 0.0, abs=2.5)


class TestValidation:
    def test_bad_capacity(self):
        eng = Engine()
        with pytest.raises(SimError):
            SharedBandwidth(eng, 0.0)

    def test_bad_per_stream(self):
        eng = Engine()
        with pytest.raises(SimError):
            SharedBandwidth(eng, 10.0, -1.0)

    def test_negative_transfer(self):
        eng = Engine()
        pipe = SharedBandwidth(eng, 10.0)
        errs = {}

        def prog():
            try:
                pipe.transfer(-5)
            except SimError:
                errs["ok"] = True

        eng.spawn(prog, 0)
        eng.run()
        assert errs["ok"]

    def test_stats(self):
        eng = Engine()
        pipe = SharedBandwidth(eng, 10.0)

        def prog():
            pipe.transfer(30.0)
            pipe.transfer(20.0)

        eng.spawn(prog, 0)
        eng.run()
        assert pipe.total_transfers == 2
        assert pipe.total_bytes == 50.0
        assert pipe.active_streams == 0
